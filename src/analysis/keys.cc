#include "analysis/keys.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "analysis/closure.h"

namespace tane {

bool IsSuperkeyUnder(AttributeSet attributes, int num_attributes,
                     const std::vector<FunctionalDependency>& fds) {
  return Closure(attributes, fds) == AttributeSet::FullSet(num_attributes);
}

std::vector<AttributeSet> CandidateKeys(
    int num_attributes, const std::vector<FunctionalDependency>& fds,
    int max_keys) {
  const AttributeSet full = AttributeSet::FullSet(num_attributes);
  if (num_attributes == 0) return {};

  // Attributes never determined by anything else must be in every key.
  AttributeSet core = full;
  for (const FunctionalDependency& fd : fds) {
    core = core.Without(fd.rhs);
  }

  std::vector<AttributeSet> keys;
  if (Closure(core, fds) == full) {
    keys.push_back(core);
    return keys;
  }

  // BFS over core ∪ S for growing S, keeping only minimal hits.
  std::deque<AttributeSet> frontier = {core};
  std::unordered_set<AttributeSet, AttributeSetHash> visited = {core};
  while (!frontier.empty() &&
         static_cast<int>(keys.size()) < max_keys) {
    const AttributeSet current = frontier.front();
    frontier.pop_front();
    for (int attribute : Members(full.Difference(current))) {
      const AttributeSet extended = current.With(attribute);
      if (!visited.insert(extended).second) continue;
      bool has_key_subset = false;
      for (AttributeSet key : keys) {
        if (extended.ContainsAll(key)) {
          has_key_subset = true;
          break;
        }
      }
      if (has_key_subset) continue;
      if (Closure(extended, fds) == full) {
        keys.push_back(extended);
      } else {
        frontier.push_back(extended);
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace tane
