#ifndef TANE_ANALYSIS_NORMALIZATION_H_
#define TANE_ANALYSIS_NORMALIZATION_H_

#include <string>
#include <vector>

#include "core/fd.h"
#include "lattice/attribute_set.h"
#include "relation/schema.h"

namespace tane {

/// Schema-quality analysis on top of discovered dependencies — the
/// database-reverse-engineering application motivating the paper's
/// introduction.

/// A dependency whose left-hand side is not a superkey (a BCNF violation).
struct BcnfViolation {
  FunctionalDependency fd;
  /// X⁺ under the dependency set; the attributes the violating lhs leaks.
  AttributeSet closure;
};

/// All BCNF-violating dependencies among `fds` over a schema of
/// `num_attributes` attributes. Trivial dependencies never violate.
std::vector<BcnfViolation> FindBcnfViolations(
    int num_attributes, const std::vector<FunctionalDependency>& fds);

/// One relation of a proposed decomposition.
struct DecomposedRelation {
  AttributeSet attributes;
  /// The violation that split this fragment off; size 0 for the residual.
  AttributeSet anchor_lhs;
};

/// Standard lossless-join BCNF decomposition: repeatedly split R into
/// (X ∪ {A}) and (R − A) for a violating X → A. Returns fragments in split
/// order; the final fragment is the residual. Bounded by `max_fragments`
/// as a defensive stop.
std::vector<DecomposedRelation> DecomposeToBcnf(
    int num_attributes, const std::vector<FunctionalDependency>& fds,
    int max_fragments = 64);

/// Renders a decomposition report for humans.
std::string DescribeDecomposition(
    const Schema& schema, const std::vector<DecomposedRelation>& fragments);

}  // namespace tane

#endif  // TANE_ANALYSIS_NORMALIZATION_H_
