#ifndef TANE_ANALYSIS_KEYS_H_
#define TANE_ANALYSIS_KEYS_H_

#include <vector>

#include "core/fd.h"
#include "lattice/attribute_set.h"

namespace tane {

/// Computes all candidate keys of a schema with `num_attributes` attributes
/// under the dependency set `fds` (logical keys: X with X⁺ = R and no proper
/// subset having that property). Breadth-first search seeded with the
/// attributes that appear in no right-hand side, which must belong to every
/// key. Worst-case exponential; `max_keys` bounds the output defensively.
std::vector<AttributeSet> CandidateKeys(
    int num_attributes, const std::vector<FunctionalDependency>& fds,
    int max_keys = 1024);

/// True if `attributes` is a superkey under `fds`.
bool IsSuperkeyUnder(AttributeSet attributes, int num_attributes,
                     const std::vector<FunctionalDependency>& fds);

}  // namespace tane

#endif  // TANE_ANALYSIS_KEYS_H_
