#include "analysis/closure.h"

#include <algorithm>

namespace tane {

AttributeSet Closure(AttributeSet attributes,
                     const std::vector<FunctionalDependency>& fds) {
  AttributeSet closure = attributes;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds) {
      if (!closure.Contains(fd.rhs) && closure.ContainsAll(fd.lhs)) {
        closure = closure.With(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<FunctionalDependency>& fds, AttributeSet lhs,
             int rhs) {
  return Closure(lhs, fds).Contains(rhs);
}

std::vector<FunctionalDependency> MinimalCover(
    std::vector<FunctionalDependency> fds) {
  CanonicalizeFds(&fds);

  // Left-reduce: drop extraneous attributes from each LHS.
  for (FunctionalDependency& fd : fds) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (int attribute : Members(fd.lhs)) {
        const AttributeSet reduced = fd.lhs.Without(attribute);
        if (Closure(reduced, fds).Contains(fd.rhs)) {
          fd.lhs = reduced;
          shrunk = true;
          break;
        }
      }
    }
  }
  CanonicalizeFds(&fds);

  // Drop dependencies implied by the rest.
  std::vector<FunctionalDependency> cover;
  for (size_t i = 0; i < fds.size(); ++i) {
    std::vector<FunctionalDependency> others;
    others.reserve(fds.size() - 1 + cover.size());
    others.insert(others.end(), cover.begin(), cover.end());
    others.insert(others.end(), fds.begin() + i + 1, fds.end());
    if (!Implies(others, fds[i].lhs, fds[i].rhs)) {
      cover.push_back(fds[i]);
    }
  }
  return cover;
}

}  // namespace tane
