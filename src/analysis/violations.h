#ifndef TANE_ANALYSIS_VIOLATIONS_H_
#define TANE_ANALYSIS_VIOLATIONS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/fd.h"
#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// Tools for inspecting where an (approximate) dependency fails — the
/// paper's motivation that with partitions "the erroneous or exceptional
/// rows can be identified easily".

/// The exact g3 error of `fd` measured on `relation` (partitions are built
/// from scratch; O(|r|·|X|)).
StatusOr<double> MeasureG3(const Relation& relation,
                           const FunctionalDependency& fd);

/// A minimum-cardinality set of row ids whose removal makes `fd` hold
/// exactly — precisely the rows the g3 measure counts. Within every
/// lhs-equivalence class, all rows outside one largest rhs-subclass are
/// reported. Ascending row order.
StatusOr<std::vector<int64_t>> ExceptionalRows(const Relation& relation,
                                               const FunctionalDependency& fd);

/// Up to `limit` pairs (t, u) witnessing violations: t and u agree on
/// fd.lhs but differ on fd.rhs.
StatusOr<std::vector<std::pair<int64_t, int64_t>>> ViolatingPairs(
    const Relation& relation, const FunctionalDependency& fd, int64_t limit);

}  // namespace tane

#endif  // TANE_ANALYSIS_VIOLATIONS_H_
