#include "analysis/violations.h"

#include <algorithm>
#include <unordered_map>

#include "partition/error.h"
#include "partition/partition_builder.h"

namespace tane {
namespace {

Status ValidateFd(const Relation& relation, const FunctionalDependency& fd) {
  if (fd.rhs < 0 || fd.rhs >= relation.num_columns()) {
    return Status::OutOfRange("fd rhs out of range");
  }
  if (!AttributeSet::FullSet(relation.num_columns()).ContainsAll(fd.lhs)) {
    return Status::OutOfRange("fd lhs references missing attributes");
  }
  if (fd.lhs.Contains(fd.rhs)) {
    return Status::InvalidArgument("fd is trivial (rhs inside lhs)");
  }
  return Status::OK();
}

}  // namespace

StatusOr<double> MeasureG3(const Relation& relation,
                           const FunctionalDependency& fd) {
  TANE_RETURN_IF_ERROR(ValidateFd(relation, fd));
  const StrippedPartition lhs =
      PartitionBuilder::ForAttributeSet(relation, fd.lhs);
  const StrippedPartition joint =
      PartitionBuilder::ForAttributeSet(relation, fd.lhs.With(fd.rhs));
  G3Calculator g3(relation.num_rows());
  return g3.Error(lhs, joint);
}

StatusOr<std::vector<int64_t>> ExceptionalRows(
    const Relation& relation, const FunctionalDependency& fd) {
  TANE_RETURN_IF_ERROR(ValidateFd(relation, fd));
  const StrippedPartition lhs =
      PartitionBuilder::ForAttributeSet(relation, fd.lhs);

  std::vector<int64_t> exceptional;
  // Within one lhs class, group rows by their rhs code; keep one largest
  // group, report the rest.
  std::unordered_map<int32_t, std::vector<int32_t>> by_rhs;
  const std::vector<int32_t>& rhs_codes = relation.column(fd.rhs).codes;
  for (int64_t cls = 0; cls < lhs.num_classes(); ++cls) {
    by_rhs.clear();
    for (int32_t i = lhs.class_begin(cls); i < lhs.class_end(cls); ++i) {
      const int32_t row = lhs.row_ids()[i];
      by_rhs[rhs_codes[row]].push_back(row);
    }
    if (by_rhs.size() <= 1) continue;
    int32_t keep_code = -1;
    size_t keep_size = 0;
    for (const auto& [code, rows] : by_rhs) {
      // Deterministic tie-break: prefer the smaller code.
      if (rows.size() > keep_size ||
          (rows.size() == keep_size && code < keep_code)) {
        keep_code = code;
        keep_size = rows.size();
      }
    }
    for (const auto& [code, rows] : by_rhs) {
      if (code == keep_code) continue;
      exceptional.insert(exceptional.end(), rows.begin(), rows.end());
    }
  }
  std::sort(exceptional.begin(), exceptional.end());
  return exceptional;
}

StatusOr<std::vector<std::pair<int64_t, int64_t>>> ViolatingPairs(
    const Relation& relation, const FunctionalDependency& fd, int64_t limit) {
  TANE_RETURN_IF_ERROR(ValidateFd(relation, fd));
  const StrippedPartition lhs =
      PartitionBuilder::ForAttributeSet(relation, fd.lhs);
  const std::vector<int32_t>& rhs_codes = relation.column(fd.rhs).codes;

  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t cls = 0; cls < lhs.num_classes() && limit > 0; ++cls) {
    for (int32_t i = lhs.class_begin(cls);
         i < lhs.class_end(cls) && limit > 0; ++i) {
      for (int32_t j = i + 1; j < lhs.class_end(cls) && limit > 0; ++j) {
        const int32_t t = lhs.row_ids()[i];
        const int32_t u = lhs.row_ids()[j];
        if (rhs_codes[t] != rhs_codes[u]) {
          pairs.emplace_back(std::min(t, u), std::max(t, u));
          --limit;
        }
      }
    }
  }
  return pairs;
}

}  // namespace tane
