#include "analysis/key_discovery.h"

#include <algorithm>
#include <utility>

#include "lattice/level.h"
#include "partition/error.h"
#include "partition/partition_builder.h"
#include "partition/product.h"

namespace tane {

StatusOr<std::vector<DiscoveredKey>> DiscoverKeys(
    const Relation& relation, const KeyDiscoveryOptions& options) {
  if (options.epsilon < 0.0 || options.epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in [0, 1]");
  }
  if (options.max_key_size < 0) {
    return Status::InvalidArgument("max_key_size must be >= 0");
  }
  const int64_t rows = relation.num_rows();
  // Exact ⌊ε·|r|⌋ threshold; the old double comparison with 1e-9 slack
  // misclassified borderline keys once ε·|r| outgrew the slack.
  const int64_t max_error =
      IntegerThreshold(options.epsilon, static_cast<double>(rows));
  const auto is_key = [&](const StrippedPartition& partition) {
    return partition.Error() <= max_error;
  };

  std::vector<DiscoveredKey> keys;
  if (rows == 0) return keys;  // no key needed for the empty relation

  struct Node {
    AttributeSet set;
    StrippedPartition partition;
  };

  // Level 1: singleton attributes.
  std::vector<Node> level;
  for (int a = 0; a < relation.num_columns(); ++a) {
    StrippedPartition partition = PartitionBuilder::ForAttribute(relation, a);
    if (is_key(partition)) {
      keys.push_back({AttributeSet::Singleton(a),
                      static_cast<double>(partition.Error()) /
                          static_cast<double>(rows)});
    } else {
      level.push_back({AttributeSet::Singleton(a), std::move(partition)});
    }
  }

  PartitionProduct product(rows);
  int level_number = 1;
  while (!level.empty() && level_number < options.max_key_size) {
    std::vector<AttributeSet> sets;
    sets.reserve(level.size());
    for (const Node& node : level) sets.push_back(node.set);

    // Candidates have all subsets in `level`, i.e. no key below them —
    // exactly the minimality condition for a key found at this level.
    std::vector<Node> next;
    for (const LevelCandidate& candidate : GenerateNextLevel(sets)) {
      TANE_ASSIGN_OR_RETURN(StrippedPartition partition,
                            product.Multiply(level[candidate.parent_a].partition,
                                             level[candidate.parent_b].partition));
      if (is_key(partition)) {
        keys.push_back({candidate.set,
                        static_cast<double>(partition.Error()) /
                            static_cast<double>(rows)});
      } else {
        next.push_back({candidate.set, std::move(partition)});
      }
    }
    level = std::move(next);
    ++level_number;
  }

  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace tane
