#ifndef TANE_ANALYSIS_CLOSURE_H_
#define TANE_ANALYSIS_CLOSURE_H_

#include <vector>

#include "core/fd.h"
#include "lattice/attribute_set.h"

namespace tane {

/// The attribute closure X⁺ of `attributes` under `fds`: the largest set Y
/// with X → Y derivable by Armstrong's axioms. Standard fixed-point
/// iteration, O(|fds| · |R|) per pass.
AttributeSet Closure(AttributeSet attributes,
                     const std::vector<FunctionalDependency>& fds);

/// True if X → A follows from `fds` (i.e., A ∈ X⁺).
bool Implies(const std::vector<FunctionalDependency>& fds, AttributeSet lhs,
             int rhs);

/// Removes dependencies implied by the remaining ones and minimizes each
/// left-hand side, yielding a canonical (minimal) cover.
std::vector<FunctionalDependency> MinimalCover(
    std::vector<FunctionalDependency> fds);

}  // namespace tane

#endif  // TANE_ANALYSIS_CLOSURE_H_
