#ifndef TANE_ANALYSIS_KEY_DISCOVERY_H_
#define TANE_ANALYSIS_KEY_DISCOVERY_H_

#include <vector>

#include "lattice/attribute_set.h"
#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// A discovered (approximate) key: `error` = e(X)/|r| is the fraction of
/// rows whose removal makes X a superkey — the natural g3-style error of a
/// key, computable in O(1) from the stripped partition of X.
struct DiscoveredKey {
  AttributeSet attributes;
  double error = 0.0;

  friend bool operator==(const DiscoveredKey& a, const DiscoveredKey& b) {
    return a.attributes == b.attributes;
  }
  friend bool operator<(const DiscoveredKey& a, const DiscoveredKey& b) {
    return a.attributes < b.attributes;
  }
};

/// Options for key discovery.
struct KeyDiscoveryOptions {
  /// Keys with error e(X)/|r| ≤ epsilon qualify; 0 = exact keys.
  double epsilon = 0.0;
  /// Upper bound on key size; kMaxAttributes = unlimited.
  int max_key_size = kMaxAttributes;
};

/// Finds all minimal (approximate) keys of `relation` with the same
/// levelwise partition machinery as TANE: level partitions come from
/// pairwise products (Lemma 3), and supersets of found keys are pruned. In
/// exact mode this returns the identical key set TANE's key pruning
/// collects as a by-product; the ε > 0 mode extends it to the
/// approximate-key task, one of the natural partition applications the
/// paper's conclusion points at.
StatusOr<std::vector<DiscoveredKey>> DiscoverKeys(
    const Relation& relation, const KeyDiscoveryOptions& options = {});

}  // namespace tane

#endif  // TANE_ANALYSIS_KEY_DISCOVERY_H_
