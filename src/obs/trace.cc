#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "util/mutex.h"

namespace tane {
namespace obs {

Tracer::Tracer(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

void Tracer::Emit(TraceEvent event) {
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> Tracer::Events() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  // Once the ring wrapped, `next_` points at the oldest surviving event.
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return events;
}

int64_t Tracer::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

SpanGuard::SpanGuard(Tracer* tracer, std::string name,
                     const MetricsRegistry* registry, int tid)
    : tracer_(tracer),
      registry_(tracer != nullptr ? registry : nullptr),
      name_(std::move(name)),
      tid_(tid) {
  if (tracer_ == nullptr) return;
  if (registry_ != nullptr) before_ = registry_->CounterTotals();
  start_us_ = tracer_->NowUs();
}

SpanGuard::~SpanGuard() {
  if (tracer_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.tid = tid_;
  event.start_us = start_us_;
  event.dur_us = tracer_->NowUs() - start_us_;
  if (registry_ != nullptr) {
    const std::array<int64_t, kCounterCount> after =
        registry_->CounterTotals();
    for (int id = 0; id < kCounterCount; ++id) {
      const int64_t delta = after[id] - before_[id];
      if (delta != 0) {
        event.args.emplace_back(
            std::string(CounterName(static_cast<CounterId>(id))), delta);
      }
    }
  }
  for (auto& arg : extra_args_) event.args.push_back(std::move(arg));
  tracer_->Emit(std::move(event));
}

void SpanGuard::AddArg(std::string key, int64_t value) {
  if (tracer_ == nullptr) return;
  extra_args_.emplace_back(std::move(key), value);
}

void ExportChromeTrace(const std::vector<TraceEvent>& events,
                       int64_t dropped_events, JsonWriter* json) {
  json->BeginObject();
  json->Key("displayTimeUnit").Value("ms");
  json->Key("otherData").BeginObject();
  json->Key("tool").Value("tane");
  json->Key("dropped_events").Value(dropped_events);
  json->EndObject();
  json->Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    json->BeginObject();
    json->Key("name").Value(event.name);
    json->Key("cat").Value("tane");
    json->Key("ph").Value(event.instant ? "i" : "X");
    json->Key("pid").Value(1);
    json->Key("tid").Value(event.tid);
    json->Key("ts").Value(event.start_us);
    if (event.instant) {
      json->Key("s").Value("t");  // instant scoped to its thread track
    } else {
      json->Key("dur").Value(event.dur_us);
    }
    if (!event.args.empty()) {
      json->Key("args").BeginObject();
      for (const auto& [key, value] : event.args) {
        json->Key(key).Value(value);
      }
      json->EndObject();
    }
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

bool WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  JsonWriter json;
  ExportChromeTrace(tracer.Events(), tracer.dropped(), &json);
  return json.WriteFile(path);
}

}  // namespace obs
}  // namespace tane
