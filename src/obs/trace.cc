#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/perf_counters.h"
#include "util/mutex.h"
#include "util/span_stack.h"

namespace tane {
namespace obs {

Tracer::Tracer(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

void Tracer::Emit(TraceEvent event) {
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> Tracer::Events() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  // Once the ring wrapped, `next_` points at the oldest surviving event.
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return events;
}

int64_t Tracer::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

int64_t Tracer::buffered() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(ring_.size());
}

namespace {

// "level 3" and "level 7" aggregate under one "level" phase row; names
// without a space are their own phase.
std::string_view PhaseKey(const std::string& name) {
  const size_t space = name.find(' ');
  return space == std::string::npos
             ? std::string_view(name)
             : std::string_view(name.data(), space);
}

void AppendHwArgs(const HwCounters& hw,
                  std::vector<std::pair<std::string, int64_t>>* args) {
  if (hw.cycles != 0) args->emplace_back("hw_cycles", hw.cycles);
  if (hw.instructions != 0) {
    args->emplace_back("hw_instructions", hw.instructions);
  }
  if (hw.cache_references != 0) {
    args->emplace_back("hw_cache_references", hw.cache_references);
  }
  if (hw.cache_misses != 0) {
    args->emplace_back("hw_cache_misses", hw.cache_misses);
  }
  if (hw.branch_misses != 0) {
    args->emplace_back("hw_branch_misses", hw.branch_misses);
  }
}

}  // namespace

SpanGuard::SpanGuard(Tracer* tracer, std::string name,
                     MetricsRegistry* registry, int tid)
    : tracer_(tracer), registry_(registry), name_(std::move(name)),
      tid_(tid) {
  // Each facet arms independently: tracing needs a tracer, hw attribution
  // needs a registry, the profiler and flight recorder are global state.
  hw_active_ = registry_ != nullptr && PerfCounters::enabled();
  stack_active_ = SpanStack::recording();
  recorder_active_ = FlightRecorder::active() != nullptr;
  if (tracer_ == nullptr && !hw_active_ && !stack_active_ &&
      !recorder_active_) {
    return;
  }
  if (stack_active_) SpanStack::Local().Push(name_.c_str());
  if (recorder_active_) {
    FlightRecorder* recorder = FlightRecorder::active();
    if (recorder != nullptr) {
      recorder->Record(tid_, FlightEventType::kSpanBegin, name_);
    }
  }
  if (tracer_ != nullptr) {
    if (registry_ != nullptr) before_ = registry_->CounterTotals();
    start_us_ = tracer_->NowUs();
  }
  start_tp_ = std::chrono::steady_clock::now();
  // Last, so the hw delta excludes the setup above.
  if (hw_active_) hw_before_ = PerfCounters::Read();
}

SpanGuard::~SpanGuard() {
  HwCounters hw_delta;
  if (hw_active_) {
    hw_delta = PerfCounters::Read() - hw_before_;
    registry_->AddHwSpan(PhaseKey(name_), hw_delta);
  }
  if (tracer_ != nullptr) {
    TraceEvent event;
    event.name = name_;
    event.tid = tid_;
    event.start_us = start_us_;
    event.dur_us = tracer_->NowUs() - start_us_;
    if (registry_ != nullptr) {
      const std::array<int64_t, kCounterCount> after =
          registry_->CounterTotals();
      for (int id = 0; id < kCounterCount; ++id) {
        const int64_t delta = after[id] - before_[id];
        if (delta != 0) {
          event.args.emplace_back(
              std::string(CounterName(static_cast<CounterId>(id))), delta);
        }
      }
    }
    if (hw_active_) AppendHwArgs(hw_delta, &event.args);
    for (auto& arg : extra_args_) event.args.push_back(std::move(arg));
    tracer_->Emit(std::move(event));
  }
  if (recorder_active_) {
    FlightRecorder* recorder = FlightRecorder::active();
    if (recorder != nullptr) {
      const auto dur = std::chrono::steady_clock::now() - start_tp_;
      recorder->Record(
          tid_, FlightEventType::kSpanEnd, name_,
          std::chrono::duration_cast<std::chrono::microseconds>(dur)
              .count());
    }
  }
  if (stack_active_) SpanStack::Local().Pop();
}

void SpanGuard::AddArg(std::string key, int64_t value) {
  if (tracer_ == nullptr) return;
  extra_args_.emplace_back(std::move(key), value);
}

void ExportChromeTrace(const std::vector<TraceEvent>& events,
                       int64_t dropped_events, JsonWriter* json) {
  json->BeginObject();
  json->Key("displayTimeUnit").Value("ms");
  json->Key("otherData").BeginObject();
  json->Key("tool").Value("tane");
  json->Key("dropped_events").Value(dropped_events);
  json->EndObject();
  json->Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    json->BeginObject();
    json->Key("name").Value(event.name);
    json->Key("cat").Value("tane");
    json->Key("ph").Value(event.instant ? "i" : "X");
    json->Key("pid").Value(1);
    json->Key("tid").Value(event.tid);
    json->Key("ts").Value(event.start_us);
    if (event.instant) {
      json->Key("s").Value("t");  // instant scoped to its thread track
    } else {
      json->Key("dur").Value(event.dur_us);
    }
    if (!event.args.empty()) {
      json->Key("args").BeginObject();
      for (const auto& [key, value] : event.args) {
        json->Key(key).Value(value);
      }
      json->EndObject();
    }
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

bool WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  JsonWriter json;
  ExportChromeTrace(tracer.Events(), tracer.dropped(), &json);
  return json.WriteFile(path);
}

}  // namespace obs
}  // namespace tane
