#include "obs/report.h"

#include <algorithm>

#include "obs/trace.h"

namespace tane {
namespace obs {

namespace {

const char* MeasureName(ErrorMeasure measure) {
  switch (measure) {
    case ErrorMeasure::kG3: return "g3";
    case ErrorMeasure::kG2: return "g2";
    case ErrorMeasure::kG1: return "g1";
  }
  return "unknown";
}

const char* StorageName(StorageMode mode) {
  switch (mode) {
    case StorageMode::kMemory: return "memory";
    case StorageMode::kDisk:   return "disk";
    case StorageMode::kAuto:   return "auto";
  }
  return "unknown";
}

void WriteHistogramObject(const HistogramSnapshot& h, JsonWriter* json) {
  json->BeginObject();
  json->Key("count").Value(h.count);
  json->Key("sum").Value(h.sum);
  json->Key("mean").Value(h.mean());
  json->Key("p50").Value(h.Percentile(50.0));
  json->Key("p95").Value(h.Percentile(95.0));
  json->Key("max").Value(h.max);
  // Trailing all-zero buckets are elided; bucket b >= 1 covers
  // [2^(b-1), 2^b).
  int last = kHistogramBuckets - 1;
  while (last > 0 && h.buckets[last] == 0) --last;
  json->Key("buckets").BeginArray();
  for (int b = 0; b <= last; ++b) json->Value(h.buckets[b]);
  json->EndArray();
  json->EndObject();
}

}  // namespace

void WriteCountersObject(const MetricsSnapshot& snapshot, JsonWriter* json) {
  json->BeginObject();
  for (int id = 0; id < kCounterCount; ++id) {
    json->Key(CounterName(static_cast<CounterId>(id)))
        .Value(snapshot.counters[id]);
  }
  json->EndObject();
}

void WriteGaugesObject(const MetricsSnapshot& snapshot, JsonWriter* json) {
  json->BeginObject();
  for (int id = 0; id < kGaugeCount; ++id) {
    json->Key(GaugeName(static_cast<GaugeId>(id)))
        .Value(snapshot.gauges[id]);
  }
  json->EndObject();
}

void WriteHistogramsObject(const MetricsSnapshot& snapshot, JsonWriter* json) {
  json->BeginObject();
  for (int id = 0; id < kHistogramCount; ++id) {
    json->Key(HistogramName(static_cast<HistogramId>(id)));
    WriteHistogramObject(snapshot.histograms[id], json);
  }
  json->EndObject();
}

void WriteMetricsObject(const MetricsSnapshot& snapshot, JsonWriter* json) {
  json->BeginObject();
  json->Key("counters");
  WriteCountersObject(snapshot, json);
  json->Key("gauges");
  WriteGaugesObject(snapshot, json);
  json->EndObject();
}

void WriteHwObject(const MetricsSnapshot& snapshot,
                   const std::string& kernel, JsonWriter* json) {
  json->BeginObject();
  json->Key("backend").Value(snapshot.hw_backend);
  // One run dispatches one kernel; naming it here is what makes the phase
  // rows per-kernel attributable across runs/artifacts.
  json->Key("kernel").Value(kernel);
  json->Key("phases").BeginArray();
  const HwPhaseSnapshot* run_phase = nullptr;
  const HwPhaseSnapshot* products_phase = nullptr;
  const HwPhaseSnapshot* validity_phase = nullptr;
  for (const HwPhaseSnapshot& phase : snapshot.hw_phases) {
    if (phase.phase == "run") run_phase = &phase;
    if (phase.phase == "products") products_phase = &phase;
    if (phase.phase == "validity") validity_phase = &phase;
    json->BeginObject();
    json->Key("phase").Value(phase.phase);
    json->Key("spans").Value(phase.spans);
    json->Key("cycles").Value(phase.hw.cycles);
    json->Key("instructions").Value(phase.hw.instructions);
    json->Key("cache_references").Value(phase.hw.cache_references);
    json->Key("cache_misses").Value(phase.hw.cache_misses);
    json->Key("branch_misses").Value(phase.hw.branch_misses);
    json->Key("ipc").Value(phase.hw.ipc());
    json->EndObject();
  }
  json->EndArray();
  // The ratios an optimization session starts from. Zero-valued under the
  // noop backend — present either way so consumers never branch on shape.
  const int64_t product_rows =
      snapshot.counter(kProductRowsScanned);
  const int64_t g3_rows = snapshot.counter(kG3RowsScanned);
  json->Key("derived").BeginObject();
  json->Key("run_ipc").Value(run_phase != nullptr ? run_phase->hw.ipc()
                                                  : 0.0);
  json->Key("products_cache_misses_per_row")
      .Value(products_phase != nullptr && product_rows > 0
                 ? static_cast<double>(products_phase->hw.cache_misses) /
                       static_cast<double>(product_rows)
                 : 0.0);
  json->Key("validity_cache_misses_per_row")
      .Value(validity_phase != nullptr && g3_rows > 0
                 ? static_cast<double>(validity_phase->hw.cache_misses) /
                       static_cast<double>(g3_rows)
                 : 0.0);
  json->EndObject();
  json->EndObject();
}

void WriteRunReport(const TaneConfig& config, const DiscoveryResult& result,
                    const RunReportOptions& options, JsonWriter* json) {
  const DiscoveryStats& stats = result.stats;

  json->BeginObject();
  // v2 added the "checkpoint" block and the "resumable" result field; v3
  // adds the "hw" hardware-counter block and the "trace" ring status.
  json->Key("schema_version").Value(3);
  json->Key("tool").Value("tane");

  json->Key("config").BeginObject();
  json->Key("epsilon").Value(config.epsilon);
  json->Key("measure").Value(MeasureName(config.measure));
  json->Key("max_lhs_size").Value(config.max_lhs_size);
  json->Key("num_threads").Value(config.num_threads);
  // The requested kernel; the dispatched one (post-fallback) is
  // result.stats.kernel, surfaced via the kernel_kind gauge.
  json->Key("kernel").Value(config.kernel);
  json->Key("use_pli_cache").Value(config.use_pli_cache);
  json->Key("storage").Value(StorageName(config.storage));
  json->Key("use_rhs_plus_pruning").Value(config.use_rhs_plus_pruning);
  json->Key("use_key_pruning").Value(config.use_key_pruning);
  json->Key("use_covered_rhs_pruning").Value(config.use_covered_rhs_pruning);
  json->Key("use_g3_bounds").Value(config.use_g3_bounds);
  json->Key("use_stripped_partitions").Value(config.use_stripped_partitions);
  json->Key("use_partition_products").Value(config.use_partition_products);
  json->EndObject();

  json->Key("dataset").BeginObject();
  json->Key("path").Value(options.dataset_path);
  json->Key("fingerprint").Value(options.dataset_fingerprint);
  json->Key("rows").Value(options.dataset_rows);
  json->Key("columns").Value(options.dataset_columns);
  json->EndObject();

  json->Key("result").BeginObject();
  json->Key("num_fds").Value(result.num_fds());
  json->Key("num_keys").Value(static_cast<int64_t>(result.keys.size()));
  json->Key("completion").Value(CompletionToString(result.completion));
  json->Key("completed_levels").Value(result.completed_levels);
  json->Key("levels_processed").Value(stats.levels_processed);
  json->Key("degraded_to_disk").Value(stats.degraded_to_disk);
  json->Key("resumable").Value(result.resumable);
  json->EndObject();

  json->Key("checkpoint").BeginObject();
  json->Key("writes").Value(stats.checkpoint_writes);
  json->Key("bytes").Value(stats.checkpoint_bytes);
  json->Key("seconds").Value(stats.checkpoint_seconds);
  json->Key("resumed_from_level").Value(stats.resumed_from_level);
  json->EndObject();

  const double accounted =
      options.read_seconds + stats.wall_seconds + options.report_seconds;
  json->Key("timing").BeginObject();
  json->Key("read_seconds").Value(options.read_seconds);
  json->Key("discover_seconds").Value(stats.wall_seconds);
  json->Key("report_seconds").Value(options.report_seconds);
  if (options.total_seconds > 0.0) {
    json->Key("other_seconds")
        .Value(std::max(0.0, options.total_seconds - accounted));
    json->Key("total_seconds").Value(options.total_seconds);
  } else {
    json->Key("total_seconds").Value(accounted);
  }
  json->EndObject();

  json->Key("metrics");
  WriteMetricsObject(result.metrics, json);
  json->Key("histograms");
  WriteHistogramsObject(result.metrics, json);

  json->Key("hw");
  WriteHwObject(result.metrics, stats.kernel, json);

  // Ring-buffer status of the tracer this run used (if any): a nonzero
  // dropped count means the trace file is a truncated window, and readers
  // must not treat it as the whole story.
  json->Key("trace").BeginObject();
  json->Key("enabled").Value(config.tracer != nullptr);
  json->Key("buffered_events")
      .Value(config.tracer != nullptr ? config.tracer->buffered()
                                      : int64_t{0});
  json->Key("dropped_events")
      .Value(config.tracer != nullptr ? config.tracer->dropped()
                                      : int64_t{0});
  json->EndObject();

  // Mirrors the CLI's "# level L: ..." lines value-for-value.
  json->Key("levels").BeginArray();
  for (const LevelParallelStats& level : stats.level_parallel) {
    json->BeginObject();
    json->Key("level").Value(level.level);
    json->Key("nodes").Value(level.nodes);
    json->Key("wall_seconds").Value(level.wall_seconds);
    json->Key("worker_seconds").Value(level.worker_seconds);
    json->Key("speedup").Value(level.speedup());
    json->EndObject();
  }
  json->EndArray();

  json->EndObject();
}

}  // namespace obs
}  // namespace tane
