#ifndef TANE_OBS_FLIGHT_RECORDER_H_
#define TANE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace tane {
namespace obs {

/// What a flight-recorder event describes. Names (FlightEventTypeName) are
/// the strings that appear in flightrec.json.
enum class FlightEventType : uint8_t {
  kSpanBegin = 0,      ///< a tracer span opened (label = span name)
  kSpanEnd,            ///< a tracer span closed (a = duration µs)
  kLevel,              ///< level started (a = level, b = nodes)
  kStall,              ///< worker gated on the commit frontier (a = task,
                       ///< b = frontier at entry)
  kVerdict,            ///< RunController verdict latched (label = reason)
  kBudget,             ///< memory budget breached (a = resident, b = budget)
  kCheckpointWrite,    ///< snapshot written (a = bytes, b = nodes)
  kCheckpointRestore,  ///< snapshot restored (a = bytes, b = nodes)
  kSpill,              ///< store degraded / spill I/O (a = bytes)
  kCheckFail,          ///< TANE_CHECK failed (dump follows)
  kSignal,             ///< fatal signal received (a = signo)
};

std::string_view FlightEventTypeName(FlightEventType type);

/// A postmortem black box: per-worker lock-free rings of the most recent
/// structured events, dumped to `<dir>/flightrec.json` when a run dies —
/// deadline, cancel, memory-budget breach, TANE_CHECK failure, or a fatal
/// signal. Recording is wait-free for writers (one fetch_add plus relaxed
/// stores, seqlock-published per slot) and cheap enough to leave on for
/// every checkpointed run; the dump path is split in two:
///
///  * DumpGraceful(): normal context — renders into the preallocated
///    buffer and publishes through AtomicWriteFile (failpoint-aware,
///    durable, torn-write safe);
///  * DumpFromSignal(): async-signal-safe — same renderer (fixed buffer,
///    no allocation, no locks), published via raw open/write/fsync/rename.
///
/// First dump wins: the earliest verdict is the root cause, and later
/// writers must not clobber it with wind-down noise.
class FlightRecorder {
 public:
  /// Creates and activates the global recorder: `rings` event rings
  /// (clamped to [1, 32]; pass workers + 1 so non-worker threads share the
  /// last ring), dumping to `dump_path`. Installs the TANE_CHECK fatal
  /// hook. Replaces any previous instance (tests re-arm freely).
  static void Arm(const std::string& dump_path, int rings);

  /// Deactivates and destroys the global recorder (tests).
  static void Disarm();

  /// The live global recorder, or nullptr. Callers must treat the pointer
  /// as valid only while they know Disarm cannot run (the CLI arms once
  /// per process; tests serialize).
  static FlightRecorder* active() {
    return active_ptr().load(std::memory_order_acquire);
  }

  /// Installs handlers for SIGTERM/SIGINT/SIGSEGV/SIGBUS/SIGFPE/SIGABRT
  /// that dump the active recorder and re-raise with default disposition.
  /// CLI-only (a library must not steal its host's handlers).
  static void InstallSignalHandlers();

  /// Appends one event. Wait-free; callable from any thread. `tid` picks
  /// the ring (out-of-range ids share the last ring). `label` is truncated
  /// to 23 chars.
  void Record(int tid, FlightEventType type, std::string_view label,
              int64_t a = 0, int64_t b = 0);

  /// Renders and durably writes the dump. Returns false on I/O failure or
  /// if a dump already happened (first wins).
  bool DumpGraceful(std::string_view reason);

  /// Async-signal-safe dump; `signo` is recorded in the header.
  void DumpFromSignal(int signo);

  /// Microseconds since Arm (signal-safe on POSIX).
  int64_t NowUs() const;

  bool dumped() const { return dumped_.load(std::memory_order_acquire); }
  const std::string& dump_path() const { return dump_path_str_; }

  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder(const std::string& dump_path, int rings);

  static std::atomic<FlightRecorder*>& active_ptr();

  /// Renders the full JSON dump into buffer_; returns rendered size.
  size_t Render(std::string_view reason, int signo);
  bool ClaimDump() {
    bool expected = false;
    return dumped_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
  }

  struct Slot;
  struct Ring;

  int rings_count_;
  std::unique_ptr<Ring[]> rings_;
  // One-shot dump latch (CAS in ClaimDump); the slot seqlock protocol
  // lives with the Slot definition in the .cc.
  // tane-lint: allow(naked-atomic)
  std::atomic<bool> dumped_{false};

  std::string dump_path_str_;
  char dump_path_[512];
  char tmp_path_[512];
  int64_t arm_ns_ = 0;  ///< CLOCK_MONOTONIC at Arm

  // Preallocated at Arm so signal-context rendering never allocates.
  size_t buffer_capacity_ = 0;
  std::unique_ptr<char[]> buffer_;
  struct SortEntry {
    int64_t t_us;
    int ring;
    int slot;
  };
  std::unique_ptr<SortEntry[]> sort_scratch_;
};

}  // namespace obs
}  // namespace tane

#endif  // TANE_OBS_FLIGHT_RECORDER_H_
