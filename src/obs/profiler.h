#ifndef TANE_OBS_PROFILER_H_
#define TANE_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tane {
namespace obs {

/// Wall-clock sampling profiler over the span stacks maintained by the
/// tracer (util/span_stack.h). A dedicated sampler thread wakes HZ times
/// per second on an absolute steady-clock schedule (no drift) and copies
/// every live thread's span path through the seqlock read protocol —
/// no signals delivered to workers, no frame pointers, no unwinder. The
/// price is span granularity: samples attribute time to the innermost
/// *span*, not the innermost function, which is exactly the attribution
/// the phase/level/kernel structure of a discovery run needs.
///
/// Folded output (WriteFolded) is one line per distinct path:
///   tane;main;run;level_3;products 412
/// ready for inferno / flamegraph.pl / speedscope.
class Profiler {
 public:
  static constexpr int kDefaultHz = 97;  ///< prime: avoids phase-locking

  Profiler() = default;
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Starts the sampler thread at `hz` (clamped to [1, 1000]) and turns on
  /// span-stack recording globally. No-op if already running.
  void Start(int hz = kDefaultHz);

  /// Stops sampling and turns span-stack recording back off.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  int64_t total_samples() const {
    return total_samples_.load(std::memory_order_relaxed);
  }

  /// Writes the folded-stack aggregate to `path`. Call after Stop() (or
  /// concurrently — the fold map is locked). Returns false on I/O error.
  bool WriteFolded(const std::string& path) const;

 private:
  void SamplerLoop(int hz);

  // Start/stop handshake flags and a statistics counter — three
  // independent cells, no protocol. tane-lint: allow(naked-atomic)
  std::atomic<bool> running_{false};
  // tane-lint: allow(naked-atomic)
  std::atomic<bool> stop_requested_{false};
  // tane-lint: allow(naked-atomic)
  std::atomic<int64_t> total_samples_{0};
  std::thread sampler_;

  mutable Mutex mu_;
  /// folded path → sample count. Distinct paths are bounded by
  /// (threads × spans per phase × levels), a few hundred in practice.
  std::map<std::string, int64_t> folded_ TANE_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace tane

#endif  // TANE_OBS_PROFILER_H_
