#ifndef TANE_OBS_PROGRESS_H_
#define TANE_OBS_PROGRESS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.h"
#include "util/run_control.h"

namespace tane {
namespace obs {

/// Periodic progress heartbeat. A monitor thread snapshots the registry
/// every `period_seconds` and emits one structured Info log line:
///
///   progress elapsed=2.0s level=3 nodes=412/1260 tests=48210 ...
///
/// The run also calls EmitNow() at terminal transitions (deadline, cancel,
/// memory-budget breach), so the last heartbeat always describes the state
/// the run ended in. Reads only relaxed atomics from the registry — the
/// hot path never notices the monitor.
class ProgressMonitor {
 public:
  struct Options {
    double period_seconds = 1.0;
    /// Optional: adds deadline_left=..s to the line while a deadline runs.
    const RunController* controller = nullptr;
  };

  ProgressMonitor(const MetricsRegistry* registry, Options options);
  ~ProgressMonitor();

  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

  /// Starts the heartbeat thread. Idempotent.
  void Start();

  /// Stops the thread and emits one final line tagged "final".
  void Stop();

  /// Emits one line immediately, tagged with `reason` (e.g. "deadline").
  /// Thread-safe; callable whether or not the thread is running.
  void EmitNow(std::string_view reason);

  /// Builds the heartbeat line without logging it (exposed for tests).
  std::string FormatLine(std::string_view reason);

 private:
  void Loop();

  const MetricsRegistry* registry_;
  const Options options_;
  const std::chrono::steady_clock::time_point start_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;

  // Previous snapshot, for the nodes/sec rate behind the ETA estimate.
  std::mutex rate_mu_;
  double last_elapsed_ = 0.0;
  int64_t last_nodes_done_ = 0;
  double nodes_per_second_ = 0.0;
};

}  // namespace obs
}  // namespace tane

#endif  // TANE_OBS_PROGRESS_H_
