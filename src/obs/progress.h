#ifndef TANE_OBS_PROGRESS_H_
#define TANE_OBS_PROGRESS_H_

#include <chrono>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/run_control.h"
#include "util/thread_annotations.h"

namespace tane {
namespace obs {

/// Periodic progress heartbeat. A monitor thread snapshots the registry
/// every `period_seconds` and emits one structured Info log line:
///
///   progress elapsed=2.0s level=3 nodes=412/1260 tests=48210 ...
///
/// The run also calls EmitNow() at terminal transitions (deadline, cancel,
/// memory-budget breach), so the last heartbeat always describes the state
/// the run ended in. Reads only relaxed atomics from the registry — the
/// hot path never notices the monitor.
class ProgressMonitor {
 public:
  struct Options {
    double period_seconds = 1.0;
    /// Optional: adds deadline_left=..s to the line while a deadline runs.
    const RunController* controller = nullptr;
  };

  ProgressMonitor(const MetricsRegistry* registry, Options options);
  ~ProgressMonitor();

  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

  /// Starts the heartbeat thread. Idempotent.
  void Start();

  /// Stops the thread and emits one final line tagged "final".
  void Stop();

  /// Emits one line immediately, tagged with `reason` (e.g. "deadline").
  /// Thread-safe; callable whether or not the thread is running.
  void EmitNow(std::string_view reason);

  /// Builds the heartbeat line without logging it (exposed for tests).
  std::string FormatLine(std::string_view reason);

 private:
  void Loop() TANE_EXCLUDES(mu_);
  // Signals the monitor thread to stop and joins it. Idempotent and safe
  // against concurrent callers: the thread handle is moved out under mu_,
  // so exactly one caller joins it.
  void StopAndJoin() TANE_EXCLUDES(mu_);

  const MetricsRegistry* registry_;
  const Options options_;
  const std::chrono::steady_clock::time_point start_;

  Mutex mu_;
  CondVar cv_;
  bool stop_requested_ TANE_GUARDED_BY(mu_) = false;
  std::thread thread_ TANE_GUARDED_BY(mu_);

  // Previous snapshot, for the nodes/sec rate behind the ETA estimate.
  Mutex rate_mu_;
  double last_elapsed_ TANE_GUARDED_BY(rate_mu_) = 0.0;
  int64_t last_nodes_done_ TANE_GUARDED_BY(rate_mu_) = 0;
  double nodes_per_second_ TANE_GUARDED_BY(rate_mu_) = 0.0;
  int64_t last_products_ TANE_GUARDED_BY(rate_mu_) = 0;
  double products_per_second_ TANE_GUARDED_BY(rate_mu_) = 0.0;
};

}  // namespace obs
}  // namespace tane

#endif  // TANE_OBS_PROGRESS_H_
