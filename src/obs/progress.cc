#include "obs/progress.h"

#include <cmath>
#include <cstdio>

#include "partition/kernels/kernels.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace tane {
namespace obs {

namespace {

void AppendF(std::string* out, const char* fmt, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value);
  *out += buffer;
}

}  // namespace

ProgressMonitor::ProgressMonitor(const MetricsRegistry* registry,
                                 Options options)
    : registry_(registry),
      options_(options),
      start_(std::chrono::steady_clock::now()) {}

ProgressMonitor::~ProgressMonitor() {
  // Silent teardown: Stop() emits the "final" line, the destructor only
  // guarantees the thread is joined if the owner forgot.
  StopAndJoin();
}

void ProgressMonitor::Start() {
  MutexLock lock(&mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void ProgressMonitor::StopAndJoin() {
  // Move the handle out under the lock and join outside it: the Loop
  // thread takes mu_ itself, and joining the moved-to local means two
  // concurrent stops can never both call join() on the same thread.
  std::thread to_join;
  {
    MutexLock lock(&mu_);
    stop_requested_ = true;
    to_join = std::move(thread_);
  }
  cv_.NotifyAll();
  if (to_join.joinable()) to_join.join();
}

void ProgressMonitor::Stop() {
  StopAndJoin();
  EmitNow("final");
}

void ProgressMonitor::EmitNow(std::string_view reason) {
  TANE_LOG(Info) << FormatLine(reason);
}

std::string ProgressMonitor::FormatLine(std::string_view reason) {
  const MetricsSnapshot snap = registry_->Snapshot();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();

  const int64_t nodes_total = snap.gauge(kLevelNodesTotal);
  const int64_t nodes_done =
      snap.counter(kNodesProcessed) - snap.gauge(kLevelNodesStart);

  // Smooth the node rate across heartbeats so the ETA does not whipsaw on
  // one fast or slow batch. The product rate is deliberately *not*
  // smoothed: it is the live-throughput readout, and an operator watching
  // a long run wants the last interval, stalls included.
  double eta_seconds = -1.0;
  double products_per_second = 0.0;
  {
    MutexLock lock(&rate_mu_);
    const double dt = elapsed - last_elapsed_;
    const int64_t dn = nodes_done - last_nodes_done_;
    const int64_t products = snap.counter(kPartitionProducts);
    const int64_t dp = products - last_products_;
    if (dt > 1e-6 && dn >= 0) {
      const double instant = static_cast<double>(dn) / dt;
      nodes_per_second_ = nodes_per_second_ <= 0.0
                              ? instant
                              : 0.5 * nodes_per_second_ + 0.5 * instant;
    }
    if (dt > 1e-6 && dp >= 0) {
      products_per_second_ = static_cast<double>(dp) / dt;
    }
    last_elapsed_ = elapsed;
    last_nodes_done_ = nodes_done;
    last_products_ = products;
    products_per_second = products_per_second_;
    if (nodes_per_second_ > 0.0 && nodes_total > nodes_done) {
      eta_seconds =
          static_cast<double>(nodes_total - nodes_done) / nodes_per_second_;
    }
  }

  std::string line = "progress";
  if (!reason.empty()) {
    line += " (";
    line += reason;
    line += ")";
  }
  AppendF(&line, " elapsed=%.1fs", elapsed);
  line += " level=" + std::to_string(snap.gauge(kCurrentLevel));
  line += " nodes=" + std::to_string(nodes_done) + "/" +
          std::to_string(nodes_total);
  line += " tests=" + std::to_string(snap.counter(kValidityTests));
  line += " products=" + std::to_string(snap.counter(kPartitionProducts));
  line += " fds=" + std::to_string(snap.counter(kFdsEmitted));
  AppendF(&line, " products_per_sec=%.0f", products_per_second);
  line += " kernel=";
  line += KernelKindName(
      static_cast<KernelKind>(snap.gauge(kKernelKind)));
  line += " cache_hits=" + std::to_string(snap.counter(kPliCacheHits));
  AppendF(&line, " resident_mb=%.1f",
          static_cast<double>(snap.gauge(kResidentBytes)) / (1024.0 * 1024.0));
  AppendF(&line, " peak_mb=%.1f",
          static_cast<double>(snap.gauge(kPeakResidentBytes)) /
              (1024.0 * 1024.0));
  line += " spilled=" +
          std::to_string(snap.gauge(kDegradedToDisk) != 0 ? 1 : 0);
  if (eta_seconds >= 0.0) AppendF(&line, " eta_level=%.1fs", eta_seconds);
  if (options_.controller != nullptr && options_.controller->has_deadline()) {
    AppendF(&line, " deadline_left=%.1fs",
            options_.controller->deadline_remaining_seconds());
  }
  return line;
}

void ProgressMonitor::Loop() {
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      options_.period_seconds > 0.0 ? options_.period_seconds : 1.0));
  for (;;) {
    {
      MutexLock lock(&mu_);
      // Sleep one period, re-arming against spurious wakeups, unless a
      // stop request arrives first.
      const auto deadline = std::chrono::steady_clock::now() + period;
      while (!stop_requested_) {
        if (cv_.WaitUntil(&mu_, deadline)) break;
      }
      if (stop_requested_) return;
    }
    // The heartbeat line is built and logged outside mu_ so a slow write
    // never blocks Stop().
    EmitNow("");
  }
}

}  // namespace obs
}  // namespace tane
