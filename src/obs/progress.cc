#include "obs/progress.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace tane {
namespace obs {

namespace {

void AppendF(std::string* out, const char* fmt, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value);
  *out += buffer;
}

}  // namespace

ProgressMonitor::ProgressMonitor(const MetricsRegistry* registry,
                                 Options options)
    : registry_(registry),
      options_(options),
      start_(std::chrono::steady_clock::now()) {}

ProgressMonitor::~ProgressMonitor() {
  // Silent teardown: Stop() emits the "final" line, the destructor only
  // guarantees the thread is joined if the owner forgot.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ProgressMonitor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void ProgressMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  EmitNow("final");
}

void ProgressMonitor::EmitNow(std::string_view reason) {
  TANE_LOG(Info) << FormatLine(reason);
}

std::string ProgressMonitor::FormatLine(std::string_view reason) {
  const MetricsSnapshot snap = registry_->Snapshot();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();

  const int64_t nodes_total = snap.gauge(kLevelNodesTotal);
  const int64_t nodes_done =
      snap.counter(kNodesProcessed) - snap.gauge(kLevelNodesStart);

  // Smooth the node rate across heartbeats so the ETA does not whipsaw on
  // one fast or slow batch.
  double eta_seconds = -1.0;
  {
    std::lock_guard<std::mutex> lock(rate_mu_);
    const double dt = elapsed - last_elapsed_;
    const int64_t dn = nodes_done - last_nodes_done_;
    if (dt > 1e-6 && dn >= 0) {
      const double instant = static_cast<double>(dn) / dt;
      nodes_per_second_ = nodes_per_second_ <= 0.0
                              ? instant
                              : 0.5 * nodes_per_second_ + 0.5 * instant;
    }
    last_elapsed_ = elapsed;
    last_nodes_done_ = nodes_done;
    if (nodes_per_second_ > 0.0 && nodes_total > nodes_done) {
      eta_seconds =
          static_cast<double>(nodes_total - nodes_done) / nodes_per_second_;
    }
  }

  std::string line = "progress";
  if (!reason.empty()) {
    line += " (";
    line += reason;
    line += ")";
  }
  AppendF(&line, " elapsed=%.1fs", elapsed);
  line += " level=" + std::to_string(snap.gauge(kCurrentLevel));
  line += " nodes=" + std::to_string(nodes_done) + "/" +
          std::to_string(nodes_total);
  line += " tests=" + std::to_string(snap.counter(kValidityTests));
  line += " products=" + std::to_string(snap.counter(kPartitionProducts));
  line += " fds=" + std::to_string(snap.counter(kFdsEmitted));
  line += " cache_hits=" + std::to_string(snap.counter(kPliCacheHits));
  AppendF(&line, " resident_mb=%.1f",
          static_cast<double>(snap.gauge(kResidentBytes)) / (1024.0 * 1024.0));
  AppendF(&line, " peak_mb=%.1f",
          static_cast<double>(snap.gauge(kPeakResidentBytes)) /
              (1024.0 * 1024.0));
  line += " spilled=" +
          std::to_string(snap.gauge(kDegradedToDisk) != 0 ? 1 : 0);
  if (eta_seconds >= 0.0) AppendF(&line, " eta_level=%.1fs", eta_seconds);
  if (options_.controller != nullptr && options_.controller->has_deadline()) {
    AppendF(&line, " deadline_left=%.1fs",
            options_.controller->deadline_remaining_seconds());
  }
  return line;
}

void ProgressMonitor::Loop() {
  const auto period = std::chrono::duration<double>(
      options_.period_seconds > 0.0 ? options_.period_seconds : 1.0);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    EmitNow("");
    lock.lock();
  }
}

}  // namespace obs
}  // namespace tane
