#include "obs/metrics.h"

// tane-atomics: single-writer
// See metrics.h: value-only cells, relaxed by contract.

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>

#include "util/mutex.h"

namespace tane {
namespace obs {

std::string_view CounterName(CounterId id) {
  switch (id) {
    case kValidityTests:      return "validity_tests";
    case kG3Scans:            return "g3_scans";
    case kG3ScansSkipped:     return "g3_scans_skipped";
    case kPartitionProducts:  return "partition_products";
    case kProductAllocations: return "product_allocations";
    case kProductRowsScanned: return "product_rows_scanned";
    case kProductLabelReuses: return "product_label_reuses";
    case kG3RowsScanned:      return "g3_rows_scanned";
    case kSetsGenerated:      return "sets_generated";
    case kKeysFound:          return "keys_found";
    case kNodesProcessed:     return "nodes_processed";
    case kFdsEmitted:         return "fds_emitted";
    case kPliCacheLookups:    return "pli_cache_lookups";
    case kPliCacheHits:       return "pli_cache_hits";
    case kPliCacheMisses:     return "pli_cache_misses";
    case kPoolAcquires:       return "pool_acquires";
    case kPoolReuses:         return "pool_reuses";
    case kPoolRecycles:       return "pool_recycles";
    case kPoolDropped:        return "pool_dropped";
    case kSpillWrites:        return "spill_writes";
    case kSpillReads:         return "spill_reads";
    case kSpillBytesWritten:  return "spill_bytes_written";
    case kSpillBytesRead:     return "spill_bytes_read";
    case kCheckpointWrites:   return "checkpoint_writes";
    case kCheckpointBytesWritten: return "checkpoint_bytes_written";
    case kCheckpointNodesWritten: return "checkpoint_nodes_written";
    case kCheckpointNodesRestored: return "checkpoint_nodes_restored";
    case kCheckpointReads:    return "checkpoint_reads";
    case kCheckpointBytesRead: return "checkpoint_bytes_read";
    case kCounterCount:       break;
  }
  return "unknown_counter";
}

std::string_view GaugeName(GaugeId id) {
  switch (id) {
    case kCurrentLevel:       return "current_level";
    case kLevelNodesTotal:    return "level_nodes_total";
    case kLevelNodesStart:    return "level_nodes_start";
    case kMaxLevelSize:       return "max_level_size";
    case kResidentBytes:      return "resident_bytes";
    case kPeakResidentBytes:  return "peak_resident_bytes";
    case kPooledBytes:        return "pooled_bytes";
    case kPliCacheBytesSaved: return "pli_cache_bytes_saved";
    case kDegradedToDisk:     return "degraded_to_disk";
    case kCheckpointLastLevel: return "checkpoint_last_level";
    case kResumedFromLevel:   return "resumed_from_level";
    case kKernelKind:         return "kernel_kind";
    case kGaugeCount:         break;
  }
  return "unknown_gauge";
}

std::string_view HistogramName(HistogramId id) {
  switch (id) {
    case kProductClasses:    return "product_classes";
    case kProductMemberRows: return "product_member_rows";
    case kG3ScanMemberRows:  return "g3_scan_member_rows";
    case kHistogramCount:    break;
  }
  return "unknown_histogram";
}

namespace {

// Bucket 0 holds zeros (and negatives, which the runtime never produces);
// bucket b >= 1 covers [2^(b-1), 2^b). The top bucket absorbs the tail.
int BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  const int width = std::bit_width(static_cast<uint64_t>(value));
  return std::min(width, kHistogramBuckets - 1);
}

// Inclusive value range represented by one bucket.
void BucketBounds(int bucket, double* lo, double* hi) {
  if (bucket <= 0) {
    *lo = 0.0;
    *hi = 0.0;
    return;
  }
  *lo = static_cast<double>(int64_t{1} << (bucket - 1));
  *hi = bucket >= 63 ? *lo * 2.0
                     : static_cast<double>((int64_t{1} << bucket) - 1);
}

}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(count);
  int64_t cumulative = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= rank) {
      double lo = 0.0;
      double hi = 0.0;
      BucketBounds(b, &lo, &hi);
      const double into =
          (rank - static_cast<double>(cumulative - buckets[b])) /
          static_cast<double>(buckets[b]);
      const double value = lo + into * (hi - lo);
      return std::min(value, static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

MetricsRegistry::MetricsRegistry(int num_shards)
    : num_shards_(std::max(1, num_shards)),
      shards_(std::make_unique<Shard[]>(
          static_cast<size_t>(std::max(1, num_shards)))) {}

void MetricsRegistry::Record(int shard, HistogramId id, int64_t value) {
  ShardHistogram& h = shards_[shard].histograms[id];
  const int bucket = BucketIndex(value);
  std::atomic<int64_t>& cell = h.buckets[bucket];
  cell.store(cell.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  h.count.store(h.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
}

void MetricsRegistry::AddHwSpan(std::string_view phase,
                                const HwCounters& delta) {
  MutexLock lock(&hw_mu_);
  auto it = hw_phases_.find(phase);
  if (it == hw_phases_.end()) {
    it = hw_phases_.emplace(std::string(phase), HwPhase{}).first;
  }
  ++it->second.spans;
  it->second.hw += delta;
}

int64_t MetricsRegistry::CounterTotal(CounterId id) const {
  int64_t total = shared_counters_[id].load(std::memory_order_relaxed);
  for (int shard = 0; shard < num_shards_; ++shard) {
    total += shards_[shard].counters[id].load(std::memory_order_relaxed);
  }
  return total;
}

std::array<int64_t, kCounterCount> MetricsRegistry::CounterTotals() const {
  std::array<int64_t, kCounterCount> totals{};
  for (int id = 0; id < kCounterCount; ++id) {
    totals[id] = shared_counters_[id].load(std::memory_order_relaxed);
  }
  for (int shard = 0; shard < num_shards_; ++shard) {
    for (int id = 0; id < kCounterCount; ++id) {
      totals[id] +=
          shards_[shard].counters[id].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.counters = CounterTotals();
  for (int id = 0; id < kGaugeCount; ++id) {
    snapshot.gauges[id] = gauges_[id].load(std::memory_order_relaxed);
  }
  for (int id = 0; id < kHistogramCount; ++id) {
    HistogramSnapshot& out = snapshot.histograms[id];
    for (int shard = 0; shard < num_shards_; ++shard) {
      const ShardHistogram& h = shards_[shard].histograms[id];
      out.count += h.count.load(std::memory_order_relaxed);
      out.sum += h.sum.load(std::memory_order_relaxed);
      out.max = std::max(out.max, h.max.load(std::memory_order_relaxed));
      for (int b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  snapshot.hw_backend = std::string(PerfBackendName(PerfCounters::backend()));
  {
    MutexLock lock(&hw_mu_);
    snapshot.hw_phases.reserve(hw_phases_.size());
    for (const auto& [phase, agg] : hw_phases_) {
      HwPhaseSnapshot row;
      row.phase = phase;
      row.spans = agg.spans;
      row.hw = agg.hw;
      snapshot.hw_phases.push_back(std::move(row));
    }
  }
  return snapshot;
}

}  // namespace obs
}  // namespace tane
