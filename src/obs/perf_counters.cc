#include "obs/perf_counters.h"

#include <atomic>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace tane {
namespace obs {

namespace {

// Independent control cells (a kill switch and a first-writer-wins
// backend latch); no cross-word ordering to declare.
// tane-lint: allow(naked-atomic)
std::atomic<bool> g_enabled{true};
// 0 = undecided, 1 = kNoop, 2 = kLinuxPerf. Latched by the first thread
// that attempts an open; forced values win over later attempts.
// tane-lint: allow(naked-atomic)
std::atomic<int> g_backend{0};

#if defined(__linux__)

constexpr int kGroupSize = 5;

// read(2) layout under PERF_FORMAT_GROUP: nr, then one value per member
// in the order they were attached to the group leader.
struct GroupReading {
  uint64_t nr;
  uint64_t values[kGroupSize];
};

int OpenOneEvent(uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // leader starts disabled
  attr.exclude_kernel = 1;                 // works at perf_event_paranoid=1
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  // pid=0, cpu=-1: this thread, on whichever CPU schedules it.
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                  group_fd, 0));
}

// Per-thread counter group. Opened lazily on first Read(); closed when the
// thread exits (thread_local destructor). A failed open latches fd=-1 so
// the thread never retries.
class ThreadGroup {
 public:
  ~ThreadGroup() {
    if (leader_fd_ >= 0) {
      for (int fd : fds_) {
        if (fd >= 0) close(fd);
      }
    }
  }

  HwCounters Read() {
    if (!opened_) Open();
    if (leader_fd_ < 0) return HwCounters{};
    GroupReading reading;
    std::memset(&reading, 0, sizeof(reading));
    const ssize_t n = read(leader_fd_, &reading, sizeof(reading));
    if (n < static_cast<ssize_t>(sizeof(uint64_t))) return HwCounters{};
    HwCounters out;
    // Members were attached in this order; a partially opened group (some
    // events unsupported on this CPU) reports fewer values — the missing
    // tail stays zero.
    int64_t* slots[kGroupSize] = {&out.cycles, &out.instructions,
                                  &out.cache_references, &out.cache_misses,
                                  &out.branch_misses};
    const uint64_t nr = reading.nr < kGroupSize ? reading.nr : kGroupSize;
    for (uint64_t i = 0; i < nr; ++i) {
      *slots[i] = static_cast<int64_t>(reading.values[i]);
    }
    return out;
  }

 private:
  void Open() {
    opened_ = true;
    leader_fd_ = OpenOneEvent(PERF_COUNT_HW_CPU_CYCLES, -1);
    if (leader_fd_ < 0) {
      // EPERM/EACCES (paranoid), ENOENT (no PMU in this VM), ENOSYS:
      // all mean "no hardware counters here" — latch the noop backend.
      int expected = 0;
      g_backend.compare_exchange_strong(expected, 1,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed);
      return;
    }
    fds_[0] = leader_fd_;
    const uint64_t members[kGroupSize - 1] = {
        PERF_COUNT_HW_INSTRUCTIONS, PERF_COUNT_HW_CACHE_REFERENCES,
        PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
    for (int i = 0; i < kGroupSize - 1; ++i) {
      // A member the PMU cannot schedule is simply skipped; its slot in
      // the reading stays zero and the derived ratios degrade gracefully.
      fds_[i + 1] = OpenOneEvent(members[i], leader_fd_);
    }
    ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    int expected = 0;
    g_backend.compare_exchange_strong(expected, 2,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed);
  }

  bool opened_ = false;
  int leader_fd_ = -1;
  int fds_[kGroupSize] = {-1, -1, -1, -1, -1};
};

ThreadGroup& LocalGroup() {
  thread_local ThreadGroup group;
  return group;
}

#endif  // defined(__linux__)

}  // namespace

std::string_view PerfBackendName(PerfBackend backend) {
  switch (backend) {
    case PerfBackend::kNoop:      return "noop";
    case PerfBackend::kLinuxPerf: return "linux_perf";
  }
  return "unknown";
}

void PerfCounters::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool PerfCounters::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

PerfBackend PerfCounters::backend() {
  const int b = g_backend.load(std::memory_order_relaxed);
  return b == 2 ? PerfBackend::kLinuxPerf : PerfBackend::kNoop;
}

HwCounters PerfCounters::Read() {
  if (!enabled()) return HwCounters{};
#if defined(__linux__)
  if (g_backend.load(std::memory_order_relaxed) == 1) return HwCounters{};
  return LocalGroup().Read();
#else
  int expected = 0;
  g_backend.compare_exchange_strong(expected, 1, std::memory_order_relaxed,
                                    std::memory_order_relaxed);
  return HwCounters{};
#endif
}

void PerfCounters::ForceBackendForTest(PerfBackend backend) {
  g_backend.store(backend == PerfBackend::kLinuxPerf ? 2 : 1,
                  std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace tane
