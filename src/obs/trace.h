#ifndef TANE_OBS_TRACE_H_
#define TANE_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/json_writer.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tane {
namespace obs {

/// One trace slice or instant marker, timed in microseconds relative to the
/// owning Tracer's epoch. `args` carries the registry counter deltas the
/// span enclosed (and any extra key/value pairs), so a Perfetto slice shows
/// e.g. the products and cache hits of exactly that phase.
struct TraceEvent {
  std::string name;
  int tid = 0;            ///< 0 = coordinator thread, 1.. = pool workers
  double start_us = 0.0;
  double dur_us = 0.0;
  bool instant = false;   ///< exported as a Chrome instant event (ph "i")
  std::vector<std::pair<std::string, int64_t>> args;
};

/// Thread-safe fixed-capacity ring buffer of trace events. Spans are rare
/// (per phase / per parallel region, not per node), so a mutex around the
/// ring costs nothing measurable; when the ring fills, the oldest events
/// are overwritten and counted in dropped().
class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since this tracer was constructed.
  double NowUs() const {
    return ToUs(std::chrono::steady_clock::now());
  }

  /// Converts an externally captured time point to this tracer's timeline.
  double ToUs(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  /// Appends one event (thread-safe).
  void Emit(TraceEvent event);

  /// Copies the buffered events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Events overwritten because the ring was full.
  int64_t dropped() const;

  /// Events currently buffered (== emitted - dropped, capped at capacity).
  int64_t buffered() const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ TANE_GUARDED_BY(mu_);
  size_t next_ TANE_GUARDED_BY(mu_) =
      0;  // insertion position once the ring is full
  int64_t dropped_ TANE_GUARDED_BY(mu_) = 0;
};

/// RAII span, the single integration point of the observability stack:
///
///  * with a tracer: emits a TraceEvent whose args are the nonzero
///    registry counter deltas plus hardware-counter deltas of the span;
///  * with a registry (tracer or not): reads the thread's perf-counter
///    group on entry/exit and folds the delta into the registry's
///    per-phase hardware aggregates (the "hw" object of --report);
///  * while the sampling profiler runs: pushes the span name onto the
///    thread's SpanStack so samples unwind to it;
///  * while a flight recorder is armed: records span begin/end events.
///
/// With none of those active every operation is a no-op, so call sites
/// need no branches.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::string name,
            MetricsRegistry* registry = nullptr, int tid = 0);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Adds an extra key/value pair to the emitted event.
  void AddArg(std::string key, int64_t value);

 private:
  Tracer* tracer_;
  MetricsRegistry* registry_;
  std::string name_;
  int tid_;
  bool hw_active_ = false;
  bool stack_active_ = false;
  bool recorder_active_ = false;
  double start_us_ = 0.0;
  std::chrono::steady_clock::time_point start_tp_{};
  HwCounters hw_before_;
  std::array<int64_t, kCounterCount> before_{};
  std::vector<std::pair<std::string, int64_t>> extra_args_;
};

/// Serializes events into the Chrome trace-event JSON format understood by
/// chrome://tracing and Perfetto: an object with a "traceEvents" array of
/// complete ("ph":"X") and instant ("ph":"i") events.
void ExportChromeTrace(const std::vector<TraceEvent>& events,
                       int64_t dropped_events, JsonWriter* json);

/// Convenience: exports `tracer`'s buffered events to `path`. Returns false
/// when the file cannot be written.
bool WriteChromeTrace(const Tracer& tracer, const std::string& path);

}  // namespace obs
}  // namespace tane

#endif  // TANE_OBS_TRACE_H_
