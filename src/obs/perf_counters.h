#ifndef TANE_OBS_PERF_COUNTERS_H_
#define TANE_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <string_view>

namespace tane {
namespace obs {

/// One hardware-counter reading (or delta between two readings). All five
/// events are scheduled as a single perf group, so the values are taken
/// from the same scheduling intervals and ratios (IPC, miss rates) are
/// internally consistent. Zero-initialized == "nothing measured".
struct HwCounters {
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t cache_references = 0;
  int64_t cache_misses = 0;
  int64_t branch_misses = 0;

  HwCounters operator-(const HwCounters& rhs) const {
    HwCounters d;
    d.cycles = cycles - rhs.cycles;
    d.instructions = instructions - rhs.instructions;
    d.cache_references = cache_references - rhs.cache_references;
    d.cache_misses = cache_misses - rhs.cache_misses;
    d.branch_misses = branch_misses - rhs.branch_misses;
    return d;
  }

  HwCounters& operator+=(const HwCounters& rhs) {
    cycles += rhs.cycles;
    instructions += rhs.instructions;
    cache_references += rhs.cache_references;
    cache_misses += rhs.cache_misses;
    branch_misses += rhs.branch_misses;
    return *this;
  }

  bool any() const {
    return cycles != 0 || instructions != 0 || cache_references != 0 ||
           cache_misses != 0 || branch_misses != 0;
  }

  /// Instructions per cycle; 0 when cycles were not measured.
  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
};

/// Which measurement backend is live in this process.
enum class PerfBackend : int {
  kNoop = 0,      ///< non-Linux, EPERM / perf_event_paranoid, or disabled
  kLinuxPerf = 1  ///< perf_event_open group counters
};

std::string_view PerfBackendName(PerfBackend backend);

/// Process-wide hardware-counter access. perf_event_open file descriptors
/// count events for the *calling thread*, so the facade keeps one lazily
/// opened counter group per thread (thread_local) and reads the group of
/// whichever thread calls Read().
///
/// The first open attempt decides the process backend: if the kernel
/// refuses (ENOSYS on non-Linux builds, EPERM/EACCES under
/// perf_event_paranoid >= 2 without CAP_PERFMON, ENOENT inside some VMs),
/// the backend latches to kNoop and every subsequent Read() returns zeros
/// at the cost of a single relaxed load — graceful degradation, never an
/// error the caller has to handle.
class PerfCounters {
 public:
  /// Globally enables/disables measurement. Disabling does not close fds
  /// already open on other threads; it just makes Read() return zeros.
  /// Default: enabled (the open path itself decides whether hardware is
  /// available).
  static void SetEnabled(bool enabled);
  static bool enabled();

  /// The backend decided by the first real open attempt on any thread, or
  /// kNoop until one happens / when measurement is impossible.
  static PerfBackend backend();

  /// Reads the calling thread's counter group, opening it on first use.
  /// Returns zeros under the noop backend. Cost on the Linux backend: one
  /// read(2) of the whole group (~1 µs); intended for span enter/exit, not
  /// per-row paths.
  static HwCounters Read();

  /// Test hook: forces the backend (and resets the "open attempted" latch
  /// when forcing kNoop), so fallback behaviour is testable on machines
  /// where perf events do work.
  static void ForceBackendForTest(PerfBackend backend);
};

}  // namespace obs
}  // namespace tane

#endif  // TANE_OBS_PERF_COUNTERS_H_
