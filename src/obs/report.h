#ifndef TANE_OBS_REPORT_H_
#define TANE_OBS_REPORT_H_

#include <cstdint>
#include <string>

#include "core/config.h"
#include "core/result.h"
#include "util/json_writer.h"

namespace tane {
namespace obs {

/// Driver-supplied context for a run report: where the data came from and
/// how long the non-discovery phases took. All fields optional; empty
/// strings / zeros are emitted as-is.
struct RunReportOptions {
  std::string dataset_path;
  /// Content fingerprint of the encoded relation ("crc32:xxxxxxxx").
  std::string dataset_fingerprint;
  int64_t dataset_rows = 0;
  int dataset_columns = 0;
  double read_seconds = 0.0;
  double report_seconds = 0.0;
  /// Total process time; when > 0 the timing object gains an "other"
  /// component so read + discover + report + other == total exactly.
  double total_seconds = 0.0;
};

/// Writers for the metric sub-objects, shared with the bench harness so
/// BENCH_*.json and run reports agree on shape.
void WriteCountersObject(const MetricsSnapshot& snapshot, JsonWriter* json);
void WriteGaugesObject(const MetricsSnapshot& snapshot, JsonWriter* json);
/// Per histogram: {count, sum, mean, p50, p95, max, buckets:[...]}.
void WriteHistogramsObject(const MetricsSnapshot& snapshot, JsonWriter* json);
/// {"counters":{...},"gauges":{...}} — histograms stay a sibling object.
void WriteMetricsObject(const MetricsSnapshot& snapshot, JsonWriter* json);
/// {"backend","kernel","phases":[...],"derived":{...}} — the per-phase
/// hardware-counter aggregates plus the derived IPC / miss-rate ratios.
void WriteHwObject(const MetricsSnapshot& snapshot,
                   const std::string& kernel, JsonWriter* json);

/// Serializes the machine-readable run report (schema_version 3): config,
/// dataset identity, result summary, timing breakdown, full metric dump,
/// histogram summaries, hardware-counter aggregates, trace-ring status,
/// and the per-level table. The per-level rows carry exactly the values
/// `tane discover --stats` prints, so the two outputs can be diffed
/// field-for-field.
void WriteRunReport(const TaneConfig& config, const DiscoveryResult& result,
                    const RunReportOptions& options, JsonWriter* json);

}  // namespace obs
}  // namespace tane

#endif  // TANE_OBS_REPORT_H_
