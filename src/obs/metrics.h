#ifndef TANE_OBS_METRICS_H_
#define TANE_OBS_METRICS_H_

// tane-atomics: single-writer
// Declared with no published words on purpose: every cell is an
// independent monotonic value (sharded counters, histogram fields) that
// readers only aggregate into a snapshot. Relaxed is the contract — no
// cell's value is ever used to order a read of another cell.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/perf_counters.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tane {
namespace obs {

/// Monotonic counters. Worker-owned counters (validity tests, scans,
/// products, ...) accumulate in per-worker shards with no cross-thread
/// contention; shared-path counters (spill I/O, pool recycling) use the
/// registry's dedicated atomic lane. Snapshot() aggregates both.
enum CounterId : int {
  kValidityTests = 0,   ///< the paper's v
  kG3Scans,             ///< exact error scans executed
  kG3ScansSkipped,      ///< scans the e(·) bounds made unnecessary
  kPartitionProducts,   ///< Lemma-3 products computed
  kProductAllocations,  ///< heap allocations inside Multiply
  kProductRowsScanned,  ///< member rows walked by Multiply's label+probe
  kProductLabelReuses,  ///< products whose labeling pass was token-skipped
  kG3RowsScanned,       ///< member rows walked by error-measure scans
  kSetsGenerated,       ///< the paper's s
  kKeysFound,           ///< sets removed by key pruning
  kNodesProcessed,      ///< lattice nodes whose validity tests finished
  kFdsEmitted,          ///< minimal dependencies recorded
  kPliCacheLookups,
  kPliCacheHits,
  kPliCacheMisses,
  kPoolAcquires,        ///< buffers handed out by the buffer pool
  kPoolReuses,          ///< acquires served without a heap allocation
  kPoolRecycles,        ///< buffers returned to the pool
  kPoolDropped,         ///< recycles rejected at the pool byte cap
  kSpillWrites,         ///< partition records written to spill segments
  kSpillReads,          ///< partition records read back from spill segments
  kSpillBytesWritten,
  kSpillBytesRead,
  kCheckpointWrites,    ///< snapshot files durably written
  kCheckpointBytesWritten,
  kCheckpointNodesWritten,  ///< survivor nodes serialized into snapshots
  kCheckpointNodesRestored,  ///< survivor nodes rehydrated on resume
  kCheckpointReads,     ///< snapshot files read back for resume
  kCheckpointBytesRead,
  kCounterCount,
};

/// Point-in-time values, written by the coordinator (or the stores) and
/// read by the progress monitor / trace exporter at any moment.
enum GaugeId : int {
  kCurrentLevel = 0,    ///< lattice level currently being processed
  kLevelNodesTotal,     ///< nodes in the current level
  kLevelNodesStart,     ///< kNodesProcessed total when this level began
  kMaxLevelSize,        ///< the paper's s_max
  kResidentBytes,       ///< partitions + scratch + pool currently resident
  kPeakResidentBytes,
  kPooledBytes,         ///< bytes retained by the buffer-pool freelists
  kPliCacheBytesSaved,
  kDegradedToDisk,      ///< 1 once a kAuto store spilled mid-run
  kCheckpointLastLevel,  ///< deepest level captured by a durable snapshot
  kResumedFromLevel,    ///< snapshot level this run restarted from (0: fresh)
  kKernelKind,          ///< dispatched KernelKind (kernels.h enum value)
  kGaugeCount,
};

/// Fixed log2-bucket histograms for size/cost distributions on the hot
/// path. Bucket b >= 1 covers values in [2^(b-1), 2^b); bucket 0 holds
/// zeros. 32 buckets cover every int64 value the runtime produces.
enum HistogramId : int {
  kProductClasses = 0,   ///< stripped classes per partition product
  kProductMemberRows,    ///< member rows (‖π‖) per partition product
  kG3ScanMemberRows,     ///< member rows touched per exact error scan
  kHistogramCount,
};

inline constexpr int kHistogramBuckets = 32;

std::string_view CounterName(CounterId id);
std::string_view GaugeName(GaugeId id);
std::string_view HistogramName(HistogramId id);

/// Aggregated view of one histogram: per-bucket counts plus exact count,
/// sum, and max. Percentiles interpolate linearly inside the bucket that
/// crosses the requested rank, clamped to the observed max.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  std::array<int64_t, kHistogramBuckets> buckets{};

  /// p in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const;
  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Hardware-counter totals attributed to one span phase ("run", "level",
/// "products", ...), summed over every span whose name starts with that
/// phase key. spans counts the contributing spans.
struct HwPhaseSnapshot {
  std::string phase;
  int64_t spans = 0;
  HwCounters hw;
};

/// A consistent-enough aggregate of every metric: counter totals summed
/// across shards, current gauge values, and merged histograms. Taken while
/// workers run it may lag individual shards by a few increments, but each
/// shard value is read atomically — never torn.
struct MetricsSnapshot {
  std::array<int64_t, kCounterCount> counters{};
  std::array<int64_t, kGaugeCount> gauges{};
  std::array<HistogramSnapshot, kHistogramCount> histograms{};
  /// Per-phase hardware-counter aggregates, sorted by phase name. Empty
  /// when no span ran under an attached registry; zero-valued rows under
  /// the noop backend (the *shape* never depends on the platform).
  std::vector<HwPhaseSnapshot> hw_phases;
  /// PerfBackendName of the backend live when the snapshot was taken.
  std::string hw_backend = "noop";

  int64_t counter(CounterId id) const { return counters[id]; }
  int64_t gauge(GaugeId id) const { return gauges[id]; }
  const HistogramSnapshot& histogram(HistogramId id) const {
    return histograms[id];
  }
};

/// The run-wide metrics registry. Designed so instrumentation adds no
/// contention to the zero-allocation product path:
///
///  * every worker owns one cache-line-padded *shard*; Add()/Record() on a
///    shard are single-writer relaxed atomic stores (a plain load+add+store,
///    no lock prefix, no sharing) — the monitor thread reading concurrently
///    sees exact, untorn values;
///  * code that cannot name a worker (disk store, pool recycling) uses
///    AddShared(), a relaxed fetch_add on a dedicated shared lane;
///  * gauges are plain atomics written by the coordinator / stores.
///
/// Snapshot() may be called from any thread at any time (the heartbeat
/// monitor does, once per period) and costs O(shards × metrics).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int num_shards = 1);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  int num_shards() const { return num_shards_; }

  /// Adds `delta` to a counter on the caller-owned shard. Each shard must
  /// have exactly one writer thread at a time (TANE's worker index gives
  /// that for free); readers may run concurrently.
  ///
  /// Single-writer contract (deliberately unlocked): this is a plain
  /// load+add+store on an atomic cell, NOT a fetch_add. Two threads writing
  /// the same shard concurrently would lose increments. The contract is
  /// structural — worker w only ever passes shard w, and the coordinator
  /// uses shard 0 only outside parallel regions — and cannot be expressed
  /// as a lock annotation; it is documented here, checked by the
  /// shard-aggregation exactness tests in tests/obs_test.cc, and guarded
  /// dynamically by the tsan preset. Code that cannot name a unique writer
  /// must use AddShared() instead.
  void Add(int shard, CounterId id, int64_t delta) {
    std::atomic<int64_t>& cell = shards_[shard].counters[id];
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }

  /// Adds `delta` from any thread (atomic read-modify-write). This is the
  /// shared lane for paths with no worker identity — spill I/O inside the
  /// disk store, pool recycling, PLI-cache bookkeeping. The fetch_add *is*
  /// the synchronization: no lock guards these cells, so the lane needs no
  /// TANE_GUARDED_BY and stays safe from any thread.
  void AddShared(CounterId id, int64_t delta) {
    shared_counters_[id].fetch_add(delta, std::memory_order_relaxed);
  }

  void SetGauge(GaugeId id, int64_t value) {
    gauges_[id].store(value, std::memory_order_relaxed);
  }

  /// Raises the gauge to `value` if larger. Single-writer (coordinator).
  void MaxGauge(GaugeId id, int64_t value) {
    std::atomic<int64_t>& cell = gauges_[id];
    if (value > cell.load(std::memory_order_relaxed)) {
      cell.store(value, std::memory_order_relaxed);
    }
  }

  int64_t gauge(GaugeId id) const {
    return gauges_[id].load(std::memory_order_relaxed);
  }

  /// Records one histogram observation on the caller-owned shard.
  void Record(int shard, HistogramId id, int64_t value);

  /// Accumulates one span's hardware-counter delta under `phase` (the span
  /// name up to its first space, so "level 3" folds into "level"). Spans
  /// are per-phase / per-level — a few dozen per run — so a mutex-guarded
  /// map is plenty. Thread-safe.
  void AddHwSpan(std::string_view phase, const HwCounters& delta)
      TANE_EXCLUDES(hw_mu_);

  /// The current total of one counter across all shards.
  int64_t CounterTotal(CounterId id) const;

  /// All counter totals, cheap enough for span-delta capture.
  std::array<int64_t, kCounterCount> CounterTotals() const;

  /// Full aggregate of counters, gauges, and histograms.
  MetricsSnapshot Snapshot() const;

 private:
  struct ShardHistogram {
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
  };

  // Padded so two workers' hot counters never share a cache line.
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kCounterCount> counters{};
    std::array<ShardHistogram, kHistogramCount> histograms;
  };

  const int num_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::array<std::atomic<int64_t>, kCounterCount> shared_counters_{};
  std::array<std::atomic<int64_t>, kGaugeCount> gauges_{};

  struct HwPhase {
    int64_t spans = 0;
    HwCounters hw;
  };
  mutable Mutex hw_mu_;
  std::map<std::string, HwPhase, std::less<>> hw_phases_
      TANE_GUARDED_BY(hw_mu_);
};

}  // namespace obs
}  // namespace tane

#endif  // TANE_OBS_METRICS_H_
