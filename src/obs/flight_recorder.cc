#include "obs/flight_recorder.h"

// tane-atomics: seqlock(seq)
// Each ring slot is published under its own per-slot seqlock: `seq` is 0
// while a writer owns the slot and (event sequence + 1) once the payload
// is complete. Readers (Render, possibly inside a signal handler) copy
// the payload between two reads of `seq` and drop the slot on mismatch.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>

#if !defined(_WIN32)
#include <time.h>
#include <unistd.h>
#endif

#include "util/checkpoint.h"
#include "util/logging.h"
#include "util/sigsafe.h"

namespace tane {
namespace obs {

namespace {

constexpr int kRingSlots = 256;
constexpr int kLabelChars = 24;
constexpr int kLabelWords = kLabelChars / 8;
constexpr int kMaxRings = 32;

int64_t MonotonicNs() {
#if defined(_WIN32)
  return 0;
#else
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#endif
}

void FatalHookTrampoline() {
  FlightRecorder* recorder = FlightRecorder::active();
  if (recorder == nullptr) return;
  recorder->Record(-1, FlightEventType::kCheckFail, "check_fail");
  recorder->DumpGraceful("check_fail");
}

void FatalSignalHandler(int signo) {
  FlightRecorder* recorder = FlightRecorder::active();
  if (recorder != nullptr) recorder->DumpFromSignal(signo);
  signal(signo, SIG_DFL);
  raise(signo);
}

}  // namespace

std::string_view FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kSpanBegin:         return "span_begin";
    case FlightEventType::kSpanEnd:           return "span_end";
    case FlightEventType::kLevel:             return "level";
    case FlightEventType::kStall:             return "stall";
    case FlightEventType::kVerdict:           return "verdict";
    case FlightEventType::kBudget:            return "budget";
    case FlightEventType::kCheckpointWrite:   return "checkpoint_write";
    case FlightEventType::kCheckpointRestore: return "checkpoint_restore";
    case FlightEventType::kSpill:             return "spill";
    case FlightEventType::kCheckFail:         return "check_fail";
    case FlightEventType::kSignal:            return "signal";
  }
  return "unknown";
}

/// One event slot. `seq` doubles as the publication word: writers store the
/// 1-based sequence number with release after filling the payload; the dump
/// reader accepts a slot only when `seq` reads the same (nonzero) value
/// before and after copying the payload — a torn slot (overwritten while
/// being read) is skipped, never emitted garbled.
struct FlightRecorder::Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<int64_t> t_us{0};
  std::atomic<int64_t> a{0};
  std::atomic<int64_t> b{0};
  std::atomic<uint32_t> meta{0};  ///< type | tid << 8
  std::atomic<uint64_t> label[kLabelWords] = {};
};

struct FlightRecorder::Ring {
  std::atomic<uint64_t> next{0};
  Slot slots[kRingSlots];
};

std::atomic<FlightRecorder*>& FlightRecorder::active_ptr() {
  // constinit: the signal path reads this; a guarded magic static would
  // take a lock on first use inside the handler.
  static constinit std::atomic<FlightRecorder*> ptr{nullptr};
  return ptr;
}

FlightRecorder::FlightRecorder(const std::string& dump_path, int rings)
    : rings_count_(std::clamp(rings, 1, kMaxRings)),
      rings_(std::make_unique<Ring[]>(
          static_cast<size_t>(std::clamp(rings, 1, kMaxRings)))),
      dump_path_str_(dump_path),
      arm_ns_(MonotonicNs()) {
  std::memset(dump_path_, 0, sizeof(dump_path_));
  std::memset(tmp_path_, 0, sizeof(tmp_path_));
  std::strncpy(dump_path_, dump_path.c_str(), sizeof(dump_path_) - 1);
  const std::string tmp = dump_path + ".sigtmp";
  std::strncpy(tmp_path_, tmp.c_str(), sizeof(tmp_path_) - 1);
  const size_t max_events =
      static_cast<size_t>(rings_count_) * kRingSlots;
  // 320 bytes bounds the longest possible event line (worst-case escaped
  // label); 4 KiB covers the header, so truncation is a can't-happen that
  // the renderer still survives (it drops whole trailing events).
  buffer_capacity_ = 4096 + max_events * 320;
  buffer_ = std::make_unique<char[]>(buffer_capacity_);
  sort_scratch_ = std::make_unique<SortEntry[]>(max_events);
}

FlightRecorder::~FlightRecorder() = default;

void FlightRecorder::Arm(const std::string& dump_path, int rings) {
  Disarm();
  // The dump directory must exist *now*: the first dump may fire before
  // anything else touches it (a deadline can expire before the first
  // checkpoint creates the directory), and the signal path cannot mkdir.
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(dump_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  // Owned by the global atomic slot; Disarm() deletes it. A raw pointer
  // because signal handlers must be able to load it without touching any
  // smart-pointer machinery. tane-lint: allow(naked-new)
  active_ptr().store(new FlightRecorder(dump_path, rings),
                     std::memory_order_release);
  internal_logging::SetFatalHook(&FatalHookTrampoline);
}

void FlightRecorder::Disarm() {
  FlightRecorder* recorder =
      active_ptr().exchange(nullptr, std::memory_order_acq_rel);
  if (recorder != nullptr) {
    internal_logging::SetFatalHook(nullptr);
    delete recorder;
  }
}

void FlightRecorder::InstallSignalHandlers() {
#if !defined(_WIN32)
  const int signals[] = {SIGTERM, SIGINT, SIGSEGV, SIGBUS, SIGFPE, SIGABRT};
  for (int signo : signals) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = &FatalSignalHandler;
    sigemptyset(&action.sa_mask);
    // SA_RESETHAND would also work, but the handler resets explicitly so
    // the re-raise path is identical on every signal.
    sigaction(signo, &action, nullptr);
  }
#endif
}

int64_t FlightRecorder::NowUs() const {
  return (MonotonicNs() - arm_ns_) / 1000;
}

void FlightRecorder::Record(int tid, FlightEventType type,
                            std::string_view label, int64_t a, int64_t b) {
  const int ring_index =
      tid >= 0 && tid < rings_count_ - 1 ? tid : rings_count_ - 1;
  Ring& ring = rings_[ring_index];
  // fetch_add makes the ring multi-writer safe (non-worker threads share
  // the last ring); each writer owns its slot until the next wraparound,
  // kRingSlots events later — far longer than one Record call.
  const uint64_t seq = ring.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[seq % kRingSlots];
  // Invalidate while writing. acq_rel RMW, not a release store: release
  // only orders the stores *before* it, so the payload stores below could
  // be hoisted above a plain store and land in a slot readers still see
  // as valid.
  slot.seq.exchange(0, std::memory_order_acq_rel);
  slot.t_us.store(NowUs(), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.meta.store(static_cast<uint32_t>(type) |
                      (static_cast<uint32_t>(tid & 0xffff) << 8),
                  std::memory_order_relaxed);
  char padded[kLabelChars];
  std::memset(padded, 0, sizeof(padded));
  const size_t n = std::min(label.size(), size_t{kLabelChars - 1});
  std::memcpy(padded, label.data(), n);
  for (int w = 0; w < kLabelWords; ++w) {
    uint64_t word;
    std::memcpy(&word, padded + w * 8, 8);
    slot.label[w].store(word, std::memory_order_relaxed);
  }
  slot.seq.store(seq + 1, std::memory_order_release);  // publish (1-based)
}

size_t FlightRecorder::Render(std::string_view reason, int signo) {
  // 64 bytes of hard headroom keep the closing "],\"truncated\":...}" out
  // of the writer's reach even if the event loop rolled back at capacity.
  SigsafeWriter out(buffer_.get(), buffer_capacity_ - 64);
  out.Append("{\"schema_version\":1,\"tool\":\"tane-flightrec\",\"reason\":\"");
  out.AppendJsonEscaped(reason.data(), reason.size());
  out.Append("\",\"signal\":");
  out.AppendInt(signo);
  out.Append(",\"elapsed_us\":");
  out.AppendInt(NowUs());
  out.Append(",\"rings\":");
  out.AppendInt(rings_count_);
  out.Append(",\"events\":[");

  // Collect every published slot into the preallocated scratch, then order
  // by timestamp so the dump reads as one chronological story.
  size_t count = 0;
  for (int r = 0; r < rings_count_; ++r) {
    const Ring& ring = rings_[r];
    const uint64_t written = ring.next.load(std::memory_order_acquire);
    const int live = written < kRingSlots ? static_cast<int>(written)
                                          : kRingSlots;
    for (int s = 0; s < live; ++s) {
      if (ring.slots[s].seq.load(std::memory_order_acquire) == 0) continue;
      sort_scratch_[count++] = SortEntry{
          ring.slots[s].t_us.load(std::memory_order_relaxed), r, s};
    }
  }
  // Shell sort: in-place, allocation-free, loop-only — safe in signal
  // context where std::sort's introspection depth is fine but heap use
  // (none, but guaranteed here) must be provably absent.
  for (size_t gap = count / 2; gap > 0; gap /= 2) {
    for (size_t i = gap; i < count; ++i) {
      const SortEntry key = sort_scratch_[i];
      size_t j = i;
      while (j >= gap && sort_scratch_[j - gap].t_us > key.t_us) {
        sort_scratch_[j] = sort_scratch_[j - gap];
        j -= gap;
      }
      sort_scratch_[j] = key;
    }
  }

  bool first = true;
  bool events_dropped = false;
  for (size_t i = 0; i < count; ++i) {
    const size_t mark = out.size();
    const Slot& slot =
        rings_[sort_scratch_[i].ring].slots[sort_scratch_[i].slot];
    // Seqlock read: copy under a stable nonzero seq or skip the slot.
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before == 0) continue;
    const int64_t t_us = slot.t_us.load(std::memory_order_relaxed);
    const int64_t a = slot.a.load(std::memory_order_relaxed);
    const int64_t b = slot.b.load(std::memory_order_relaxed);
    const uint32_t meta = slot.meta.load(std::memory_order_relaxed);
    char label[kLabelChars];
    for (int w = 0; w < kLabelWords; ++w) {
      const uint64_t word = slot.label[w].load(std::memory_order_relaxed);
      std::memcpy(label + w * 8, &word, 8);
    }
    label[kLabelChars - 1] = '\0';
    // The fence, not the acquire on the re-read, is what orders the
    // relaxed payload loads above: an acquire load only orders the
    // accesses that come *after* it.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;

    if (!first) out.AppendChar(',');
    first = false;
    out.Append("{\"seq\":");
    out.AppendInt(static_cast<int64_t>(seq_before - 1));
    out.Append(",\"t_us\":");
    out.AppendInt(t_us);
    out.Append(",\"tid\":");
    // Sign-extend the 16-bit tid field (tid -1 = non-worker thread).
    out.AppendInt(static_cast<int16_t>((meta >> 8) & 0xffff));
    out.Append(",\"type\":\"");
    const FlightEventType type = static_cast<FlightEventType>(meta & 0xff);
    const std::string_view type_name = FlightEventTypeName(type);
    out.Append(type_name.data(), type_name.size());
    out.Append("\",\"label\":\"");
    out.AppendJsonEscaped(label, kLabelChars);
    out.Append("\",\"a\":");
    out.AppendInt(a);
    out.Append(",\"b\":");
    out.AppendInt(b);
    out.Append("}");
    if (out.truncated()) {
      // Drop the half-written event and stop; the closing tokens below
      // always fit in the headroom reserved at construction.
      out.ResetTo(mark);  // mark precedes this event's separator comma
      events_dropped = true;
      break;
    }
  }
  out.Append("],\"truncated\":");
  out.Append(events_dropped ? "true" : "false");
  out.Append("}\n");
  return out.size();
}

bool FlightRecorder::DumpGraceful(std::string_view reason) {
  if (!ClaimDump()) return false;
  const size_t size = Render(reason, /*signo=*/0);
  return AtomicWriteFile(dump_path_str_,
                         std::string(buffer_.get(), size))
      .ok();
}

void FlightRecorder::DumpFromSignal(int signo) {
  if (!ClaimDump()) return;
  const size_t size = Render("signal", signo);
  SigsafeWriteFile(dump_path_, tmp_path_, buffer_.get(), size);
}

}  // namespace obs
}  // namespace tane
