#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "util/mutex.h"
#include "util/span_stack.h"

namespace tane {
namespace obs {

namespace {

// Folded-frame sanitizer: flamegraph.pl splits "path count" on the last
// space and frames on ';', so both characters must not appear in frames.
void AppendFrame(std::string* path, const std::string& frame) {
  if (!path->empty()) path->push_back(';');
  for (char c : frame) {
    path->push_back(c == ' ' || c == ';' ? '_' : c);
  }
}

}  // namespace

Profiler::~Profiler() { Stop(); }

void Profiler::Start(int hz) {
  if (running_.load(std::memory_order_relaxed)) return;
  hz = std::clamp(hz, 1, 1000);
  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  SpanStack::SetRecording(true);
  sampler_ = std::thread([this, hz] { SamplerLoop(hz); });
}

void Profiler::Stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  if (sampler_.joinable()) sampler_.join();
  SpanStack::SetRecording(false);
  running_.store(false, std::memory_order_relaxed);
}

void Profiler::SamplerLoop(int hz) {
  using Clock = std::chrono::steady_clock;
  const auto period =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<
          double>(1.0 / static_cast<double>(hz)));
  // Absolute schedule: next = start + n * period. A slow tick borrows from
  // the next interval instead of stretching the whole timeline, so the
  // effective rate stays hz even when the fold map rehashes.
  auto next = Clock::now() + period;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_until(next);
    next += period;
    const std::vector<SpanStack::Sample> samples = SpanStack::SampleAll();
    total_samples_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(&mu_);
    for (const SpanStack::Sample& sample : samples) {
      if (sample.skipped) continue;
      std::string path = "tane";
      AppendFrame(&path, sample.label);
      if (sample.frames.empty()) {
        // Registered but between spans (a parked worker, the reader phase
        // on main). Kept visible so the flamegraph shows true wall shares.
        AppendFrame(&path, "(idle)");
      } else {
        for (const std::string& frame : sample.frames) {
          AppendFrame(&path, frame);
        }
      }
      ++folded_[path];
    }
  }
}

bool Profiler::WriteFolded(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  MutexLock lock(&mu_);
  for (const auto& [folded_path, count] : folded_) {
    out << folded_path << ' ' << count << '\n';
  }
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace tane
