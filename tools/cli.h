#ifndef TANE_TOOLS_CLI_H_
#define TANE_TOOLS_CLI_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/fd.h"
#include "relation/schema.h"
#include "util/status.h"

namespace tane {
namespace cli {

/// Entry point of the `tane` command-line tool, factored out of main() so
/// the whole surface is unit-testable. `args` excludes the program name.
/// Returns the process exit code; normal output goes to `out`, diagnostics
/// to `err`.
///
/// Commands:
///   discover <file.csv>    mine minimal (approximate) dependencies
///   keys <file.csv>        mine minimal (approximate) keys
///   check <file.csv>       measure one dependency (g1/g2/g3, violations)
///   violations <file.csv>  list the exceptional rows of one dependency
///   normalize <file.csv>   minimal cover, candidate keys, BCNF proposal
///   generate <dataset>     write a synthetic paper dataset as CSV
///   help                   print usage
///
/// Exit codes are stable and distinct per failure class: 0 success
/// (including deadline-expired partial results, which print a warning to
/// `err`), 2 invalid argument, 3 not found, 4 out of range, 5 I/O error,
/// 6 failed precondition, 7 resource exhausted, 8 unimplemented,
/// 9 internal error, 10 interrupted but resumable. Exit 10 is the
/// retry-me code: it covers an early-stopped discover run whose checkpoint
/// landed on disk (rerun with --resume to continue) and a corrupt snapshot
/// under --resume (clear the directory and rerun from scratch); schedulers
/// should retry it, in contrast to 6 which marks a real mismatch between
/// the snapshot and the dataset/configuration. Diagnostics always go to
/// `err`, never `out`.
int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// Maps a Status to the CLI's documented process exit code.
int ExitCodeForStatus(const Status& status);

/// Parses a dependency written with schema names, e.g. "city,zip->state"
/// (left side may be empty: "->state" is the constancy dependency).
StatusOr<FunctionalDependency> ParseFd(const std::string& text,
                                       const Schema& schema);

/// Renders one dependency as JSON (used by --format=json).
std::string FdToJson(const FunctionalDependency& fd, const Schema& schema);

/// Escapes a string for embedding in JSON output.
std::string JsonEscape(const std::string& text);

}  // namespace cli
}  // namespace tane

#endif  // TANE_TOOLS_CLI_H_
