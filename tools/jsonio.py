"""Shared JSON-file loading for the tools/ scripts.

Both tools/check_obs.py and tools/tane_lint.py consume JSON artifacts
(benchmark output, run reports, the lint baseline) and previously each
grew its own ad-hoc loader. This module is the single place that turns a
path into a parsed document, with error messages that always name the
offending file and say precisely what was wrong with it.
"""

import json


def load_json(path, fail):
    """Parse the JSON document at `path`.

    `fail` is the caller's error reporter: it is invoked with a single
    human-readable message that names the file, and it must not return
    (the tools' implementations print and exit). On success the parsed
    document is returned.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        fail(f"{path}: file does not exist")
    except OSError as error:
        fail(f"{path}: cannot read: {error.strerror or error}")
    except json.JSONDecodeError as error:
        fail(f"{path}: invalid JSON at line {error.lineno}, "
             f"column {error.colno}: {error.msg}")
    raise AssertionError(f"fail() returned after a JSON error in {path}")
