#!/usr/bin/env python3
"""tane-lint: project-rule linter for the TANE library sources.

Checks src/ for rules that generic tooling does not know about:

  tane-check       TANE_CHECK aborts the process, so library code may only
                   use it on true invariant paths. Every permitted site
                   carries a `tane-lint: allow(tane-check)` waiver comment
                   explaining the invariant; unwaived sites are findings.
                   (Error handling belongs to Status/StatusOr.)
  naked-new        No raw `new` / `malloc` / `free` in library code; use
                   std::make_unique (or waive, e.g. for private
                   constructors and deliberately leaked singletons).
  raw-std-sync     No std::mutex / std::shared_mutex / std::condition_variable
                   members outside util/mutex.h: library code must use the
                   annotated tane::Mutex wrappers so the Clang thread-safety
                   `analysis` preset sees every lock.
  unguarded-mutex  A tane::Mutex / tane::SharedMutex member must have at
                   least one TANE_GUARDED_BY / TANE_REQUIRES /
                   TANE_ACQUIRE(...) companion naming it in the same file —
                   a lock protecting nothing (statically) is either dead or
                   its contract is undocumented.
  float-threshold  Validity thresholds are exact integers (see
                   IntegerThreshold in core/tane.cc). Comparing a violation
                   count against an ε-scaled double, or an error measure
                   against a non-zero float literal with ==/!=, reintroduces
                   the ulp bugs that design removed.
  iwyu             Curated include-what-you-use list: files using the
                   symbols below must include the named header directly
                   instead of leaning on transitive includes.
  naked-atomic     A std::atomic member in a file with no
                   `// tane-atomics: <protocol>` header is concurrency
                   whose contract nobody wrote down — the semantic tier
                   (tools/tane_analyzer) can only check protocols that are
                   declared. Declare the protocol, or waive with the
                   reason this atomic needs none (e.g. an independent
                   flag whose explicit orders are the whole contract).

A finding may be waived with a comment `tane-lint: allow(<rule>)` on the
finding line or the lines just above it. Known findings live in
tools/lint_baseline.json (ids are content-addressed, so unrelated edits do
not invalidate them); the tool exits non-zero only on findings absent from
the baseline. Run with --update-baseline to accept the current findings.

Usage:
  tools/tane_lint.py [--root DIR] [--baseline FILE] [--update-baseline]
"""

import argparse
import json
import os
import re
import sys
import time

import jsonio
from cpptext import strip_comments_and_strings

# Files whose whole purpose exempts them from specific rules.
RULE_EXEMPT_FILES = {
    "tane-check": {"src/util/logging.h"},        # defines the macro
    "raw-std-sync": {"src/util/mutex.h"},        # wraps the std types
    "unguarded-mutex": {"src/util/mutex.h"},
}

# Curated include-what-you-use table: usage pattern -> required include.
# Deliberately small; every entry here has bitten us via a transitive
# include disappearing. Matching is done on comment/string-stripped text.
IWYU_RULES = (
    (re.compile(r"\bTANE_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|"
                r"EXCLUDES|CAPABILITY|SCOPED_CAPABILITY|TRY_ACQUIRE|"
                r"ASSERT_CAPABILITY|RETURN_CAPABILITY|"
                r"NO_THREAD_SAFETY_ANALYSIS)\b"),
     "util/thread_annotations.h"),
    (re.compile(r"\b(MutexLock|WriterMutexLock|ReaderMutexLock|CondVar)\b"),
     "util/mutex.h"),
    (re.compile(r"\bTANE_(LOG|CHECK|DCHECK)\b"), "util/logging.h"),
    (re.compile(r"\bstd::atomic\b"), "<atomic>"),
    (re.compile(r"\bstd::(unique_ptr|shared_ptr|make_unique|make_shared)\b"),
     "<memory>"),
)
IWYU_EXEMPT_FILES = {
    "src/util/thread_annotations.h",  # defines the macros
    "src/util/mutex.h",               # is the header
    "src/util/logging.h",
}

WAIVER_RE = re.compile(r"tane-lint:\s*allow\(([a-z-]+)\)")
# How far above a finding a waiver comment may sit (finding line plus the
# comment block immediately preceding it).
WAIVER_REACH = 3

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:tane::)?(Mutex|SharedMutex)\s+(\w+)\s*;")
STD_SYNC_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|condition_variable"
    r"(?:_any)?)\b")
NAKED_NEW_RE = re.compile(r"(?<!\w)new\b(?!\s*\()")  # `new (ptr)` placement ok
# A std::atomic variable/member declaration (not a function returning a
# reference to one: the `\s+` after the template rejects `...>&`).
NAKED_ATOMIC_RE = re.compile(
    r"^\s*(?:static\s+|mutable\s+|constinit\s+|inline\s+)*"
    r"std::atomic(?:<[^;]*?>)?\s+\w+\s*(?:\{[^}]*\}|=[^;]*)?\s*(?:;|\[)")
PROTOCOL_HEADER_RE = re.compile(r"//\s*tane-atomics:")
ALLOC_CALL_RE = re.compile(r"\b(malloc|calloc|realloc|free)\s*\(")
TANE_CHECK_RE = re.compile(r"\bTANE_CHECK\b")
# A violation measure compared against an ε-scaled double, in either order.
FLOAT_THRESHOLD_RES = (
    re.compile(r"\b\w*(error|removals|pairs|violations|g3|g1)\w*\s*"
               r"(<=|<|>=|>)\s*[^;=]*\bepsilon\b", re.IGNORECASE),
    re.compile(r"\bepsilon\b\s*\*[^;]*(<=|<|>=|>)", re.IGNORECASE),
    re.compile(r"\b\w*(g3|g1|error)\w*\s*(==|!=)\s*0?\.\d*[1-9]"),
)


class Finding:
    def __init__(self, rule, path, line_number, line_text, message):
        self.rule = rule
        self.path = path
        self.line_number = line_number
        self.message = message
        # Content-addressed id: stable across unrelated edits that only
        # shift line numbers.
        normalized = " ".join(line_text.split())
        self.identity = f"{rule}:{path}:{normalized}"

    def __str__(self):
        return (f"{self.path}:{self.line_number}: [{self.rule}] "
                f"{self.message}")


def waived(rule, raw_lines, line_number):
    lo = max(0, line_number - 1 - WAIVER_REACH)
    for line in raw_lines[lo:line_number]:
        match = WAIVER_RE.search(line)
        if match and match.group(1) == rule:
            return True
    return False


def lint_file(root, rel_path, findings):
    with open(os.path.join(root, rel_path), encoding="utf-8") as handle:
        raw = handle.read()
    raw_lines = raw.splitlines()
    code_lines = strip_comments_and_strings(raw).splitlines()

    def emit(rule, line_number, message):
        if rel_path in RULE_EXEMPT_FILES.get(rule, ()):
            return
        if waived(rule, raw_lines, line_number):
            return
        findings.append(Finding(rule, rel_path, line_number,
                                raw_lines[line_number - 1], message))

    has_protocol_header = bool(PROTOCOL_HEADER_RE.search(raw))

    mutex_members = []  # (line_number, member_name)
    for number, line in enumerate(code_lines, start=1):
        if not has_protocol_header and NAKED_ATOMIC_RE.match(line):
            emit("naked-atomic", number,
                 "std::atomic member in a file with no `// tane-atomics: "
                 "<protocol>` header; declare the lock-free protocol so "
                 "tane-analyzer can check it, or waive with the reason "
                 "this atomic needs none")
        if TANE_CHECK_RE.search(line) and "#define" not in line:
            emit("tane-check", number,
                 "TANE_CHECK aborts; library code must return Status "
                 "(waive with `tane-lint: allow(tane-check)` on genuine "
                 "invariant paths)")
        if NAKED_NEW_RE.search(line) and "make_unique" not in line \
                and "make_shared" not in line:
            emit("naked-new", number,
                 "raw `new`; use std::make_unique or waive with a comment "
                 "explaining the ownership")
        match = ALLOC_CALL_RE.search(line)
        if match:
            emit("naked-new", number,
                 f"raw {match.group(1)}(); use owned containers/buffers")
        match = STD_SYNC_RE.search(line)
        if match:
            emit("raw-std-sync", number,
                 f"std::{match.group(1)} is invisible to thread-safety "
                 "analysis; use the annotated tane::Mutex wrappers "
                 "(util/mutex.h)")
        match = MUTEX_MEMBER_RE.match(line)
        if match:
            mutex_members.append((number, match.group(2)))
        for pattern in FLOAT_THRESHOLD_RES:
            if pattern.search(line):
                emit("float-threshold", number,
                     "floating-point comparison against an ε threshold; "
                     "validity tests must use the integer thresholds "
                     "(IntegerThreshold in core/tane.cc)")
                break

    code_text = "\n".join(code_lines)
    for number, member in mutex_members:
        companion = re.compile(
            r"TANE_(GUARDED_BY|PT_GUARDED_BY|REQUIRES(_SHARED)?|"
            r"ACQUIRE(_SHARED)?|RELEASE(_SHARED|_GENERIC)?|EXCLUDES|"
            r"TRY_ACQUIRE|ASSERT_CAPABILITY|RETURN_CAPABILITY)"
            r"\(\s*" + re.escape(member) + r"\s*\)")
        if not companion.search(code_text):
            emit("unguarded-mutex", number,
                 f"mutex member `{member}` has no TANE_GUARDED_BY/"
                 "TANE_REQUIRES companion in this file; annotate what it "
                 "protects or document why not")

    if rel_path not in IWYU_EXEMPT_FILES:
        include_set = set(
            re.findall(r'^\s*#\s*include\s+["<]([^">]+)[">]',
                       raw, re.MULTILINE))
        for pattern, header in IWYU_RULES:
            match = pattern.search(code_text)
            if match:
                wanted = header.strip("<>")
                if wanted not in include_set:
                    line_number = code_text.count("\n", 0, match.start()) + 1
                    emit("iwyu", line_number,
                         f"uses `{match.group(0)}` but does not include "
                         f"{header} directly")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: tools/lint_baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept the current findings as the baseline")
    args = parser.parse_args(argv[1:])

    tools_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.dirname(tools_dir))
    baseline_path = args.baseline or os.path.join(tools_dir,
                                                  "lint_baseline.json")
    started = time.monotonic()

    files = []
    for directory, _, names in sorted(os.walk(os.path.join(root, "src"))):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                files.append(os.path.relpath(os.path.join(directory, name),
                                             root))

    findings = []
    for rel_path in files:
        lint_file(root, rel_path, findings)

    def fail(message):
        print(f"tane-lint: FAIL: {message}", file=sys.stderr)
        sys.exit(1)

    if args.update_baseline:
        document = {"comment":
                    "Accepted tane-lint findings; regenerate with "
                    "tools/tane_lint.py --update-baseline.",
                    "findings": sorted(f.identity for f in findings)}
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"tane-lint: baseline updated with {len(findings)} findings")
        return 0

    baseline = set()
    if os.path.exists(baseline_path):
        document = jsonio.load_json(baseline_path, fail)
        if not isinstance(document.get("findings"), list):
            fail(f"{baseline_path}: missing 'findings' array")
        baseline = set(document["findings"])

    new = [f for f in findings if f.identity not in baseline]
    stale = baseline - {f.identity for f in findings}
    for finding in new:
        print(finding, file=sys.stderr)

    elapsed = time.monotonic() - started
    print(f"tane-lint: {len(files)} files, {len(findings)} findings "
          f"({len(findings) - len(new)} baselined, {len(new)} new, "
          f"{len(stale)} baseline entries now fixed) in {elapsed:.2f}s")
    if stale:
        print("tane-lint: note: run --update-baseline to drop fixed "
              "entries", file=sys.stderr)
    if new:
        print("tane-lint: FAIL: new findings above; fix them, waive with "
              "`tane-lint: allow(<rule>)`, or --update-baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
