#!/usr/bin/env bash
# tane-lint driver: every static check the repository defines, in one gate.
#
#   1. tools/tane_lint.py      project rules (always runs; pure python)
#   2. tools/tane_analyzer     semantic tier: lock-free protocol, signal-
#                              safety, determinism, and handle-discipline
#                              contracts (always runs; the libclang
#                              frontend self-selects when available and
#                              the token-level micro frontend otherwise;
#                              --skip-analyzer to omit)
#   3. clang-tidy              .clang-tidy checks over compile_commands.json
#                              (skipped when clang-tidy is not installed)
#   4. `analysis` preset       Clang build with -Wthread-safety -Werror,
#                              which also drives the negative-compile
#                              harness in tests/negative_compile/
#                              (skipped when clang++ is not installed)
#
# Exits non-zero on any new finding. tools/check.sh runs this as a hard
# gate; it can also be run standalone.
set -euo pipefail

cd "$(dirname "$0")/.."

run_analyzer=1
for arg in "$@"; do
  case "${arg}" in
    --skip-analyzer) run_analyzer=0 ;;
    *) echo "lint.sh: unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
started=$(date +%s)

echo "==> lint: tane_lint.py (project rules)"
python3 tools/tane_lint.py

if [ "${run_analyzer}" -eq 1 ]; then
  echo "==> lint: tane_analyzer (semantic contracts)"
  python3 tools/tane_analyzer
else
  echo "==> lint: tane_analyzer skipped (--skip-analyzer)"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "==> lint: clang-tidy"
  # Reuse any existing compile database; the analysis preset exports one,
  # and so does the default preset when configured with clang.
  compdb=""
  for dir in build-analysis build; do
    if [ -f "${dir}/compile_commands.json" ]; then
      compdb="${dir}"
      break
    fi
  done
  if [ -z "${compdb}" ]; then
    echo "lint: no compile_commands.json found; configuring the default "
    echo "lint: preset with CMAKE_EXPORT_COMPILE_COMMANDS=ON"
    cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    compdb="build"
  fi
  # shellcheck disable=SC2046
  clang-tidy -p "${compdb}" --quiet $(find src -name '*.cc' | sort)
else
  echo "==> lint: clang-tidy skipped (clang-tidy not installed)"
fi

if command -v clang++ >/dev/null 2>&1; then
  echo "==> lint: analysis preset (clang -Wthread-safety -Werror)"
  cmake --preset analysis
  cmake --build --preset analysis -j "${jobs}"
else
  echo "==> lint: analysis preset skipped (clang++ not installed;" \
       "thread-safety annotations are checked on machines with clang)"
fi

elapsed=$(( $(date +%s) - started ))
echo "lint OK in ${elapsed}s"
