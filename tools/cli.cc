#include "tools/cli.h"

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "analysis/closure.h"
#include "analysis/key_discovery.h"
#include "analysis/keys.h"
#include "analysis/normalization.h"
#include "analysis/violations.h"
#include "core/run_snapshot.h"
#include "core/tane.h"
#include "datasets/paper_datasets.h"
#include "obs/flight_recorder.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "relation/csv.h"
#include "relation/stats.h"
#include "relation/transforms.h"
#include "rules/association.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace tane {
namespace cli {
namespace {

constexpr const char* kUsage = R"(tane — functional dependency profiler

usage: tane <command> [options]

commands:
  discover <file.csv>   mine all minimal (approximate) dependencies
      --epsilon=E       g3 threshold in [0,1] (default 0 = exact FDs)
      --max-lhs=N       bound on left-hand-side size
      --disk            keep partitions on disk (the scalable TANE)
      --storage=S       memory (default), disk, or auto (spill to disk when
                        the memory budget is breached)
      --deadline-ms=T   time-box the run; on expiry a partial result with
                        every dependency proven so far is printed
      --memory-budget-mb=M
                        partition-memory budget; with --storage=auto (the
                        default when only a budget is given) the run spills
                        to disk instead of failing
      --threads=N       worker threads for per-level parallel execution
                        (default 1; output is identical for any N)
      --kernel=K        data-parallel kernel for the partition-product and
                        error-scan hot loops: auto (default; widest ISA the
                        CPU supports), scalar, avx2, or neon; an unavailable
                        kernel falls back to scalar with a warning (output
                        is identical for every K)
      --pli-cache=on|off
                        intern structurally identical partitions behind
                        shared storage (default on; results are identical
                        either way)
      --format=F        text (default), json, or csv
      --stats           print search statistics and the phase breakdown
      --trace=PATH      write a Chrome/Perfetto trace of the run's phases
                        (open with https://ui.perfetto.dev)
      --report=PATH     write a machine-readable JSON run report (config,
                        dataset fingerprint, metrics, per-level table,
                        hardware-counter phase aggregates)
      --profile[=HZ]    sample the span stack HZ times per second (default
                        97) and write a folded-stack profile; feed it to
                        flamegraph.pl or speedscope
      --profile-out=PATH
                        folded-stack output path (default
                        tane-profile.folded)
      --progress[=SECONDS]
                        log a progress heartbeat every SECONDS (default 1);
                        implies --log-level=info unless set explicitly
      --checkpoint-dir=DIR
                        write crash-safe snapshots of the search into DIR;
                        a run that stops early (deadline, cancel, memory
                        budget) leaves its last level boundary on disk and
                        exits 10 ("interrupted but resumable"); also arms
                        the flight recorder: any early exit dumps the last
                        seconds of structured events to DIR/flightrec.json
      --checkpoint-every-level
                        also snapshot after every completed level, not just
                        on early exit (requires --checkpoint-dir)
      --resume          continue from the latest snapshot in DIR; refuses a
                        snapshot taken with a different dataset or a
                        different output-affecting configuration; with no
                        snapshot present the run simply starts fresh
      --stop-after-level=N
                        suspend the run at the level-N boundary (checkpoint
                        and exit 10); a deliberate pause, used for cooperative
                        time-slicing and by the resume tests
  keys <file.csv>       mine all minimal (approximate) keys
      --epsilon=E       key error threshold (default 0)
  check <file.csv> --fd=LHS->RHS
                        measure one dependency: g1, g2, g3, violations
  violations <file.csv> --fd=LHS->RHS [--limit=N]
                        list the exceptional rows behind a dependency
  normalize <file.csv>  minimal cover, candidate keys, BCNF decomposition
  profile <file.csv>    per-column statistics (cardinality, entropy, flags)
  rules <file.csv>      association rules between attribute-value pairs
      --min-support=S   itemset support threshold (default 0.1)
      --min-confidence=C rule confidence threshold (default 0.8)
      --limit=N         print at most N rules (default 50)
  generate <dataset>    write a synthetic stand-in dataset as CSV to stdout
      dataset           lymphography|hepatitis|wbc|chess|adult
      --rows=N          override the row count
      --copies=K        concatenate K suffixed copies (the paper's "xK")
      --seed=S          generator seed (default 42)
  help                  show this message

shared CSV options: --no-header, --delimiter=C
global options: --log-level=info|warning|error|fatal (default warning; the
  TANE_LOG_LEVEL environment variable sets the same thing, flag wins)

exit codes: 0 ok (including partial results), 2 invalid argument,
  3 not found, 4 out of range, 5 I/O error, 6 failed precondition,
  7 resource exhausted, 8 unimplemented, 9 internal error,
  10 interrupted but resumable (a checkpoint on disk can continue the run)
)";

constexpr int kExitResumable = 10;

struct ParsedArgs {
  std::string command;
  std::vector<std::string> positional;
  // Flag name -> value ("" for bare flags).
  std::vector<std::pair<std::string, std::string>> flags;

  const std::string* Flag(const std::string& name) const {
    for (const auto& [key, value] : flags) {
      if (key == name) return &value;
    }
    return nullptr;
  }
};

StatusOr<ParsedArgs> ParseArgs(const std::vector<std::string>& args) {
  ParsedArgs parsed;
  if (args.empty()) return Status::InvalidArgument("missing command");
  parsed.command = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (StartsWith(arg, "--")) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        parsed.flags.emplace_back(arg.substr(2), "");
      } else {
        parsed.flags.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else {
      parsed.positional.push_back(arg);
    }
  }
  return parsed;
}

// Rejects flags no command handler would read; a silently dropped typo
// (--memory-budget-md) would otherwise run without the limit the user
// asked for.
Status CheckKnownFlags(const ParsedArgs& args,
                       std::initializer_list<const char*> known) {
  for (const auto& [name, value] : args.flags) {
    bool found = false;
    for (const char* candidate : known) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown flag --" + name + " for '" +
                                     args.command + "' (see 'tane help')");
    }
  }
  return Status::OK();
}

StatusOr<double> FlagAsDouble(const ParsedArgs& args, const std::string& name,
                              double fallback) {
  const std::string* raw = args.Flag(name);
  if (raw == nullptr) return fallback;
  double value = 0;
  if (!ParseDouble(*raw, &value)) {
    return Status::InvalidArgument("bad --" + name + " value: " + *raw);
  }
  return value;
}

StatusOr<int64_t> FlagAsInt(const ParsedArgs& args, const std::string& name,
                            int64_t fallback) {
  const std::string* raw = args.Flag(name);
  if (raw == nullptr) return fallback;
  int64_t value = 0;
  if (!ParseInt64(*raw, &value)) {
    return Status::InvalidArgument("bad --" + name + " value: " + *raw);
  }
  return value;
}

StatusOr<Relation> LoadCsv(const ParsedArgs& args) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("missing input file");
  }
  CsvOptions options;
  options.has_header = args.Flag("no-header") == nullptr;
  if (const std::string* delim = args.Flag("delimiter")) {
    if (delim->size() != 1) {
      return Status::InvalidArgument("--delimiter must be one character");
    }
    options.delimiter = (*delim)[0];
  }
  return ReadCsvFile(args.positional[0], options);
}

Status RunDiscover(const ParsedArgs& args, std::ostream& out,
                   std::ostream& err, bool* resumable) {
  const WallTimer total_timer;
  const WallTimer read_timer;
  TANE_ASSIGN_OR_RETURN(Relation relation, LoadCsv(args));
  const double read_seconds = read_timer.ElapsedSeconds();
  TaneConfig config;
  TANE_ASSIGN_OR_RETURN(config.epsilon, FlagAsDouble(args, "epsilon", 0.0));
  TANE_ASSIGN_OR_RETURN(int64_t max_lhs,
                        FlagAsInt(args, "max-lhs", kMaxAttributes));
  config.max_lhs_size = static_cast<int>(max_lhs);
  TANE_ASSIGN_OR_RETURN(int64_t deadline_ms,
                        FlagAsInt(args, "deadline-ms", 0));
  TANE_ASSIGN_OR_RETURN(int64_t budget_mb,
                        FlagAsInt(args, "memory-budget-mb", 0));
  TANE_ASSIGN_OR_RETURN(int64_t threads, FlagAsInt(args, "threads", 1));
  config.num_threads = static_cast<int>(threads);
  if (const std::string* kernel = args.Flag("kernel")) {
    config.kernel = *kernel;
  }
  if (const std::string* pli_cache = args.Flag("pli-cache")) {
    if (*pli_cache == "on") {
      config.use_pli_cache = true;
    } else if (*pli_cache == "off") {
      config.use_pli_cache = false;
    } else {
      return Status::InvalidArgument("--pli-cache must be on or off");
    }
  }
  if (deadline_ms < 0) {
    return Status::InvalidArgument("--deadline-ms must be >= 0");
  }
  if (budget_mb < 0) {
    return Status::InvalidArgument("--memory-budget-mb must be >= 0");
  }
  if (const std::string* dir = args.Flag("checkpoint-dir")) {
    if (dir->empty()) {
      return Status::InvalidArgument("--checkpoint-dir needs a path");
    }
    config.checkpoint_directory = *dir;
  }
  if (args.Flag("checkpoint-every-level") != nullptr) {
    config.checkpoint_every_level = true;
  }
  if (args.Flag("resume") != nullptr) config.resume = true;
  TANE_ASSIGN_OR_RETURN(int64_t stop_after_level,
                        FlagAsInt(args, "stop-after-level", 0));
  config.stop_after_level = static_cast<int>(stop_after_level);

  if (args.Flag("disk") != nullptr) config.storage = StorageMode::kDisk;
  if (const std::string* storage = args.Flag("storage")) {
    if (*storage == "memory") {
      config.storage = StorageMode::kMemory;
    } else if (*storage == "disk") {
      config.storage = StorageMode::kDisk;
    } else if (*storage == "auto") {
      config.storage = StorageMode::kAuto;
    } else {
      return Status::InvalidArgument("unknown --storage: " + *storage);
    }
  } else if (budget_mb > 0 && args.Flag("disk") == nullptr) {
    // A budget without an explicit storage choice means "stay fast, but
    // degrade to disk rather than die".
    config.storage = StorageMode::kAuto;
  }

  RunController controller;
  if (deadline_ms > 0) {
    controller.SetDeadlineAfter(std::chrono::milliseconds(deadline_ms));
  }
  if (budget_mb > 0) controller.set_memory_budget_bytes(budget_mb << 20);
  if (deadline_ms > 0 || budget_mb > 0) config.run_controller = &controller;

  if (const std::string* progress = args.Flag("progress")) {
    double period = 1.0;
    if (!progress->empty() &&
        (!ParseDouble(*progress, &period) || period <= 0)) {
      return Status::InvalidArgument("--progress period must be > 0, got " +
                                     *progress);
    }
    config.progress_period_seconds = period;
  }

  std::optional<obs::Tracer> tracer;
  if (args.Flag("trace") != nullptr) {
    tracer.emplace();
    config.tracer = &*tracer;
  }

  // The flight recorder rides the checkpoint directory: a run durable
  // enough to checkpoint is a run whose early exits deserve a postmortem.
  // Armed before discovery so the rings cover the whole run, including
  // restore.
  if (!config.checkpoint_directory.empty()) {
    obs::FlightRecorder::Arm(config.checkpoint_directory + "/flightrec.json",
                             config.num_threads + 1);
    obs::FlightRecorder::InstallSignalHandlers();
  }

  obs::Profiler profiler;
  const std::string* profile = args.Flag("profile");
  // --profile-out alone implies profiling at the default rate.
  if (profile != nullptr || args.Flag("profile-out") != nullptr) {
    int64_t hz = obs::Profiler::kDefaultHz;
    if (profile != nullptr && !profile->empty() &&
        (!ParseInt64(*profile, &hz) || hz <= 0)) {
      return Status::InvalidArgument("--profile rate must be > 0, got " +
                                     *profile);
    }
    profiler.Start(static_cast<int>(hz));
  }

  TANE_ASSIGN_OR_RETURN(DiscoveryResult result,
                        Tane::Discover(relation, config));
  if (profiler.running()) {
    profiler.Stop();
    const std::string* out_path = args.Flag("profile-out");
    const std::string folded_path =
        out_path != nullptr ? *out_path : std::string("tane-profile.folded");
    if (!profiler.WriteFolded(folded_path)) {
      return Status::IoError("cannot write profile to " + folded_path);
    }
    err << "note: wrote " << profiler.total_samples() << " samples to "
        << folded_path << "\n";
  }
  const WallTimer report_timer;
  result.stats.read_seconds = read_seconds;
  if (!result.complete()) {
    err << "warning: partial result ("
        << CompletionToString(result.completion) << ") after "
        << result.completed_levels << " completed levels\n";
  }
  if (result.resumable) {
    *resumable = true;
    err << "note: checkpoint on disk covers " << result.stats.checkpoint_writes
        << " write(s); rerun with --checkpoint-dir="
        << config.checkpoint_directory << " --resume to continue\n";
  }
  const Schema& schema = relation.schema();

  const std::string* format = args.Flag("format");
  const std::string format_name = format == nullptr ? "text" : *format;
  if (format_name == "json") {
    out << "{\n  \"num_fds\": " << result.num_fds() << ",\n  \"completion\": \""
        << CompletionToString(result.completion)
        << "\",\n  \"completed_levels\": " << result.completed_levels
        << ",\n  \"fds\": [\n";
    for (size_t i = 0; i < result.fds.size(); ++i) {
      out << "    " << FdToJson(result.fds[i], schema)
          << (i + 1 < result.fds.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"keys\": [\n";
    for (size_t i = 0; i < result.keys.size(); ++i) {
      out << "    \"" << JsonEscape(result.keys[i].ToString(schema)) << "\""
          << (i + 1 < result.keys.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  } else if (format_name == "csv") {
    out << "lhs,rhs,g3_error\n";
    for (const FunctionalDependency& fd : result.fds) {
      std::vector<std::string> names;
      for (int a : Members(fd.lhs)) names.push_back(schema.name(a));
      out << "\"" << JoinStrings(names, ";") << "\"," << schema.name(fd.rhs)
          << "," << fd.error << "\n";
    }
  } else if (format_name == "text") {
    out << "# " << result.num_fds() << " minimal dependencies, "
        << result.keys.size() << " minimal keys\n";
    if (!result.complete()) {
      out << "# partial result: " << CompletionToString(result.completion)
          << " after " << result.completed_levels << " completed levels\n";
    }
    for (const FunctionalDependency& fd : result.fds) {
      out << fd.ToString(schema);
      if (fd.error > 0) out << "   (g3=" << fd.error << ")";
      out << "\n";
    }
    for (AttributeSet key : result.keys) {
      out << "key: " << key.ToString(schema) << "\n";
    }
  } else {
    return Status::InvalidArgument("unknown --format: " + format_name);
  }

  if (args.Flag("stats") != nullptr) {
    DiscoveryStats& stats = result.stats;
    out << "# levels=" << stats.levels_processed
        << " sets=" << stats.sets_generated
        << " validity_tests=" << stats.validity_tests
        << " products=" << stats.partition_products
        << " g3_scans=" << stats.g3_scans
        << " g3_scans_skipped=" << stats.g3_scans_skipped
        << " product_allocations=" << stats.product_allocations
        << " product_rows_scanned=" << stats.product_rows_scanned
        << " product_label_reuses=" << stats.product_label_reuses
        << " g3_rows_scanned=" << stats.g3_rows_scanned
        << " kernel=" << stats.kernel
        << " pli_cache_lookups=" << stats.pli_cache_lookups
        << " pli_cache_hits=" << stats.pli_cache_hits
        << " pli_cache_misses=" << stats.pli_cache_misses
        << " pli_cache_bytes_saved=" << stats.pli_cache_bytes_saved
        << " peak_partition_bytes=" << stats.peak_partition_bytes
        << " spill_bytes=" << stats.spill_bytes_written
        << " degraded_to_disk=" << (stats.degraded_to_disk ? 1 : 0)
        << " checkpoint_writes=" << stats.checkpoint_writes
        << " checkpoint_bytes=" << stats.checkpoint_bytes
        << " resumed_from_level=" << stats.resumed_from_level
        << " threads=" << stats.num_threads;
    if (tracer.has_value()) out << " trace_dropped=" << tracer->dropped();
    out << " seconds=" << stats.wall_seconds << "\n";
    // Hardware-counter phase aggregates, one line per phase. Under the
    // noop backend the spans are still counted, the counters read zero.
    out << "# hw backend=" << obs::PerfBackendName(obs::PerfCounters::backend())
        << "\n";
    for (const obs::HwPhaseSnapshot& phase : result.metrics.hw_phases) {
      out << "# hw " << phase.phase << ": spans=" << phase.spans
          << " cycles=" << phase.hw.cycles
          << " instructions=" << phase.hw.instructions
          << " cache_misses=" << phase.hw.cache_misses
          << " branch_misses=" << phase.hw.branch_misses;
      if (phase.hw.cycles > 0) {
        char ipc[32];
        std::snprintf(ipc, sizeof(ipc), " ipc=%.2f", phase.hw.ipc());
        out << ipc;
      }
      out << "\n";
    }
    // The phase breakdown sums exactly: "other" is defined as the remainder
    // of the total after the measured phases, never clamped.
    stats.report_seconds = report_timer.ElapsedSeconds();
    const double total = total_timer.ElapsedSeconds();
    const double other = total - stats.read_seconds - stats.wall_seconds -
                         stats.report_seconds;
    out << "# phases read=" << stats.read_seconds
        << "s discover=" << stats.wall_seconds
        << "s report=" << stats.report_seconds << "s other=" << other
        << "s total=" << total << "s\n";
    for (const LevelParallelStats& level : stats.level_parallel) {
      out << "# level " << level.level << ": nodes=" << level.nodes
          << " wall=" << level.wall_seconds
          << "s worker=" << level.worker_seconds
          << "s speedup=" << level.speedup() << "\n";
    }
  }

  if (const std::string* trace_path = args.Flag("trace")) {
    // One-shot, not per-event: the ring already absorbed the loss; the
    // operator only needs to know the trace is a suffix, not the whole run.
    if (tracer->dropped() > 0) {
      err << "warning: trace ring overflowed; dropped " << tracer->dropped()
          << " oldest event(s) — the trace covers the tail of the run\n";
    }
    if (!WriteChromeTrace(*tracer, *trace_path)) {
      return Status::IoError("cannot write trace to " + *trace_path);
    }
  }
  if (const std::string* report_path = args.Flag("report")) {
    obs::RunReportOptions report_options;
    report_options.dataset_path = args.positional[0];
    report_options.dataset_fingerprint = DatasetFingerprint(relation);
    report_options.dataset_rows = relation.num_rows();
    report_options.dataset_columns = relation.num_columns();
    report_options.read_seconds = read_seconds;
    report_options.report_seconds = report_timer.ElapsedSeconds();
    report_options.total_seconds = total_timer.ElapsedSeconds();
    result.stats.report_seconds = report_options.report_seconds;
    JsonWriter json;
    obs::WriteRunReport(config, result, report_options, &json);
    if (!json.WriteFile(*report_path)) {
      return Status::IoError("cannot write report to " + *report_path);
    }
  }
  return Status::OK();
}

Status RunKeys(const ParsedArgs& args, std::ostream& out) {
  TANE_ASSIGN_OR_RETURN(Relation relation, LoadCsv(args));
  KeyDiscoveryOptions options;
  TANE_ASSIGN_OR_RETURN(options.epsilon, FlagAsDouble(args, "epsilon", 0.0));
  TANE_ASSIGN_OR_RETURN(std::vector<DiscoveredKey> keys,
                        DiscoverKeys(relation, options));
  out << "# " << keys.size() << " minimal keys (epsilon=" << options.epsilon
      << ")\n";
  for (const DiscoveredKey& key : keys) {
    out << key.attributes.ToString(relation.schema());
    if (key.error > 0) out << "   (error=" << key.error << ")";
    out << "\n";
  }
  return Status::OK();
}

StatusOr<FunctionalDependency> FdFromArgs(const ParsedArgs& args,
                                          const Schema& schema) {
  const std::string* fd_text = args.Flag("fd");
  if (fd_text == nullptr) {
    return Status::InvalidArgument("missing --fd=LHS->RHS");
  }
  return ParseFd(*fd_text, schema);
}

Status RunCheck(const ParsedArgs& args, std::ostream& out) {
  TANE_ASSIGN_OR_RETURN(Relation relation, LoadCsv(args));
  TANE_ASSIGN_OR_RETURN(FunctionalDependency fd,
                        FdFromArgs(args, relation.schema()));
  TANE_ASSIGN_OR_RETURN(double g3, MeasureG3(relation, fd));
  TANE_ASSIGN_OR_RETURN(std::vector<int64_t> exceptional,
                        ExceptionalRows(relation, fd));
  out << fd.ToString(relation.schema()) << "\n";
  out << "g3 error:         " << g3 << (g3 == 0 ? "  (holds exactly)" : "")
      << "\n";
  out << "exceptional rows: " << exceptional.size() << " of "
      << relation.num_rows() << "\n";
  return Status::OK();
}

Status RunViolations(const ParsedArgs& args, std::ostream& out) {
  TANE_ASSIGN_OR_RETURN(Relation relation, LoadCsv(args));
  TANE_ASSIGN_OR_RETURN(FunctionalDependency fd,
                        FdFromArgs(args, relation.schema()));
  TANE_ASSIGN_OR_RETURN(int64_t limit, FlagAsInt(args, "limit", 20));
  TANE_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                        ExceptionalRows(relation, fd));
  out << "# " << rows.size() << " exceptional rows for "
      << fd.ToString(relation.schema()) << "\n";
  const Schema& schema = relation.schema();
  for (size_t i = 0; i < rows.size() && static_cast<int64_t>(i) < limit;
       ++i) {
    out << "row " << rows[i] << ":";
    for (int a : Members(fd.lhs.With(fd.rhs))) {
      out << " " << schema.name(a) << "=" << relation.value(rows[i], a);
    }
    out << "\n";
  }
  return Status::OK();
}

Status RunNormalize(const ParsedArgs& args, std::ostream& out) {
  TANE_ASSIGN_OR_RETURN(Relation relation, LoadCsv(args));
  TANE_ASSIGN_OR_RETURN(DiscoveryResult result, Tane::Discover(relation));
  const Schema& schema = relation.schema();
  const int n = relation.num_columns();

  std::vector<FunctionalDependency> cover = MinimalCover(result.fds);
  out << "# minimal cover (" << cover.size() << " rules)\n";
  for (const FunctionalDependency& fd : cover) {
    out << fd.ToString(schema) << "\n";
  }

  std::vector<AttributeSet> keys = CandidateKeys(n, result.fds);
  out << "# candidate keys (" << keys.size() << ")\n";
  for (AttributeSet key : keys) out << key.ToString(schema) << "\n";

  const std::vector<BcnfViolation> violations =
      FindBcnfViolations(n, result.fds);
  out << "# bcnf violations: " << violations.size() << "\n";
  out << "# proposed decomposition\n"
      << DescribeDecomposition(schema, DecomposeToBcnf(n, result.fds));
  return Status::OK();
}

Status RunProfile(const ParsedArgs& args, std::ostream& out) {
  TANE_ASSIGN_OR_RETURN(Relation relation, LoadCsv(args));
  const RelationStats stats = ComputeStats(relation);
  out << "# " << stats.rows << " rows, " << relation.num_columns()
      << " columns\n";
  out << FormatStats(stats);
  const std::vector<int> constants = stats.constant_columns();
  const std::vector<int> uniques = stats.unique_columns();
  if (!constants.empty()) {
    out << "# constant columns imply {} -> column dependencies\n";
  }
  if (!uniques.empty()) {
    out << "# unique columns are unary keys and determine every column\n";
  }
  return Status::OK();
}

Status RunRules(const ParsedArgs& args, std::ostream& out) {
  TANE_ASSIGN_OR_RETURN(Relation relation, LoadCsv(args));
  AssociationMiningOptions options;
  TANE_ASSIGN_OR_RETURN(options.min_support,
                        FlagAsDouble(args, "min-support", 0.1));
  TANE_ASSIGN_OR_RETURN(options.min_confidence,
                        FlagAsDouble(args, "min-confidence", 0.8));
  TANE_ASSIGN_OR_RETURN(int64_t limit, FlagAsInt(args, "limit", 50));
  TANE_ASSIGN_OR_RETURN(std::vector<AssociationRule> rules,
                        MineAssociationRules(relation, options));
  out << "# " << rules.size() << " rules (min_support=" << options.min_support
      << ", min_confidence=" << options.min_confidence << ")\n";
  for (size_t i = 0; i < rules.size() && static_cast<int64_t>(i) < limit;
       ++i) {
    out << rules[i].ToString(relation) << "\n";
  }
  return Status::OK();
}

Status RunGenerate(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("missing dataset name");
  }
  TANE_ASSIGN_OR_RETURN(PaperDataset dataset,
                        ParsePaperDatasetName(args.positional[0]));
  TANE_ASSIGN_OR_RETURN(int64_t rows, FlagAsInt(args, "rows", 0));
  TANE_ASSIGN_OR_RETURN(int64_t seed, FlagAsInt(args, "seed", 42));
  TANE_ASSIGN_OR_RETURN(int64_t copies, FlagAsInt(args, "copies", 1));
  TANE_ASSIGN_OR_RETURN(
      Relation relation,
      MakePaperDataset(dataset, rows, static_cast<uint64_t>(seed)));
  if (copies > 1) {
    TANE_ASSIGN_OR_RETURN(relation, ConcatenateCopies(
                                        relation, static_cast<int>(copies)));
  }
  WriteCsv(relation, out);
  return Status::OK();
}

}  // namespace

StatusOr<FunctionalDependency> ParseFd(const std::string& text,
                                       const Schema& schema) {
  const size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    return Status::InvalidArgument("dependency must contain '->': " + text);
  }
  FunctionalDependency fd;
  const std::string_view rhs_name =
      StripWhitespace(std::string_view(text).substr(arrow + 2));
  fd.rhs = schema.IndexOf(rhs_name);
  if (fd.rhs < 0) {
    return Status::NotFound("unknown attribute: " + std::string(rhs_name));
  }
  const std::string_view lhs_text = std::string_view(text).substr(0, arrow);
  if (!StripWhitespace(lhs_text).empty()) {
    for (std::string_view part : SplitString(lhs_text, ',')) {
      part = StripWhitespace(part);
      const int attribute = schema.IndexOf(part);
      if (attribute < 0) {
        return Status::NotFound("unknown attribute: " + std::string(part));
      }
      fd.lhs = fd.lhs.With(attribute);
    }
  }
  if (fd.lhs.Contains(fd.rhs)) {
    return Status::InvalidArgument("dependency is trivial: " + text);
  }
  return fd;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string FdToJson(const FunctionalDependency& fd, const Schema& schema) {
  std::ostringstream out;
  out << "{\"lhs\": [";
  bool first = true;
  for (int a : Members(fd.lhs)) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(schema.name(a)) << "\"";
  }
  out << "], \"rhs\": \"" << JsonEscape(schema.name(fd.rhs))
      << "\", \"g3_error\": " << fd.error << "}";
  return out.str();
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kOutOfRange:
      return 4;
    case StatusCode::kIoError:
      return 5;
    case StatusCode::kFailedPrecondition:
      return 6;
    case StatusCode::kResourceExhausted:
      return 7;
    case StatusCode::kUnimplemented:
      return 8;
    case StatusCode::kInternal:
      return 9;
  }
  return 1;
}

int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  // Chaos-harness hook: lets a spawned child die by SIGKILL at a precise
  // checkpoint site (TANE_FAILPOINT_KILL=<site>[:skip]). No-op otherwise.
  failpoint::ArmKillFromEnv();
  StatusOr<ParsedArgs> parsed = ParseArgs(args);
  if (!parsed.ok()) {
    err << "error: " << parsed.status().ToString() << "\n" << kUsage;
    return ExitCodeForStatus(parsed.status());
  }

  // Log severity: the environment applies first, an explicit --log-level
  // wins over it, and --progress without either lowers to Info so the
  // heartbeats it asks for are actually visible (the library default of
  // kWarning would swallow them).
  namespace logging = internal_logging;
  bool log_level_chosen = logging::InitLogSeverityFromEnv();
  if (const std::string* level = parsed->Flag("log-level")) {
    logging::LogSeverity severity = logging::LogSeverity::kWarning;
    if (!logging::ParseLogSeverity(*level, &severity)) {
      err << "error: bad --log-level value: " << *level
          << " (want info, warning, error, or fatal)\n";
      return 2;
    }
    logging::SetMinLogSeverity(severity);
    log_level_chosen = true;
  }
  if (!log_level_chosen && parsed->Flag("progress") != nullptr &&
      logging::GetMinLogSeverity() > logging::LogSeverity::kInfo) {
    logging::SetMinLogSeverity(logging::LogSeverity::kInfo);
  }

  Status status = Status::OK();
  bool resumable = false;
  const std::string& command = parsed->command;
  if (command == "discover") {
    status = CheckKnownFlags(
        *parsed, {"epsilon", "max-lhs", "deadline-ms", "memory-budget-mb",
                  "threads", "kernel", "pli-cache", "disk", "storage",
                  "format",
                  "stats", "trace", "report", "progress", "profile",
                  "profile-out", "log-level",
                  "no-header", "delimiter", "checkpoint-dir",
                  "checkpoint-every-level", "resume", "stop-after-level"});
    if (status.ok()) status = RunDiscover(*parsed, out, err, &resumable);
  } else if (command == "keys") {
    status = CheckKnownFlags(
        *parsed, {"epsilon", "log-level", "no-header", "delimiter"});
    if (status.ok()) status = RunKeys(*parsed, out);
  } else if (command == "check") {
    status = CheckKnownFlags(*parsed,
                             {"fd", "log-level", "no-header", "delimiter"});
    if (status.ok()) status = RunCheck(*parsed, out);
  } else if (command == "violations") {
    status = CheckKnownFlags(
        *parsed, {"fd", "limit", "log-level", "no-header", "delimiter"});
    if (status.ok()) status = RunViolations(*parsed, out);
  } else if (command == "normalize") {
    status = CheckKnownFlags(*parsed, {"log-level", "no-header", "delimiter"});
    if (status.ok()) status = RunNormalize(*parsed, out);
  } else if (command == "profile") {
    status = CheckKnownFlags(*parsed, {"log-level", "no-header", "delimiter"});
    if (status.ok()) status = RunProfile(*parsed, out);
  } else if (command == "rules") {
    status = CheckKnownFlags(
        *parsed, {"min-support", "min-confidence", "limit", "log-level",
                  "no-header", "delimiter"});
    if (status.ok()) status = RunRules(*parsed, out);
  } else if (command == "generate") {
    status = CheckKnownFlags(*parsed, {"rows", "seed", "copies", "log-level"});
    if (status.ok()) status = RunGenerate(*parsed, out);
  } else if (command == "help" || command == "--help") {
    out << kUsage;
    return 0;
  } else {
    err << "error: unknown command '" << command << "'\n" << kUsage;
    return 2;
  }

  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    if (command == "discover") {
      // A corrupt snapshot means "clear the directory and start over", not
      // "page someone" — the lost work is recomputable — so it shares the
      // retryable exit code rather than the failed-precondition one that a
      // genuine dataset/config mismatch gets.
      if (IsSnapshotCorruptStatus(status)) return kExitResumable;
      // A memory-budget breach surfaces as an error (there is no partial
      // result to print), but the wind-down checkpoint may still have
      // landed; if a loadable snapshot exists, the run is resumable.
      if (status.code() == StatusCode::kResourceExhausted) {
        const std::string* dir = parsed->Flag("checkpoint-dir");
        if (dir != nullptr && !dir->empty() &&
            LoadLatestSnapshot(*dir).ok()) {
          err << "note: checkpoint on disk; rerun with --resume to continue\n";
          return kExitResumable;
        }
      }
    }
    return ExitCodeForStatus(status);
  }
  if (resumable) return kExitResumable;
  return 0;
}

}  // namespace cli
}  // namespace tane
