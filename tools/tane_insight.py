#!/usr/bin/env python3
"""Comparison tooling over TANE JSON artifacts.

Usage:
  tane_insight.py diff A.json B.json [--rel-tol=R]

`diff` compares two artifacts of the same kind — two run reports
(--report), two BENCH_micro_partition.json files, two
BENCH_parallel_scaling.json files, or two static-analysis baselines
(tools/lint_baseline.json / tools/analyzer_baseline.json, whose
content-addressed finding ids make the diff a findings changelog:
fixed on one side, new on the other) — and classifies every difference:

  * structural differences (a key present on one side only, or a type
    change) are always reported;
  * numeric leaves that describe *measurements* — timings, rates,
    hardware counters, overhead ratios — must agree within the relative
    tolerance band (default 0.5, i.e. 50%: wall-clock noise between two
    runs on a shared CI box is real);
  * every other leaf — search counters, configuration, results, level
    tables — must match exactly: two runs of the same configuration are
    deterministic by design, and a drift in partition_products between
    them is a bug, not noise.

Exit status: 0 when the artifacts agree (within band), 1 when any
difference is found, 2 on usage errors. tools/check.sh runs this as a
soft gate over back-to-back obs-smoke reports; CI treats a nonzero exit
as a warning, not a failure, because the band on a loaded machine is a
judgement call, not a law.
"""

import re
import sys

import jsonio

# A numeric leaf is "noisy" (banded, not exact) when its dotted path
# matches any of these. Everything here is a measurement of *this
# process on this machine right now*; everything else in the artifacts
# is a deterministic function of (dataset, config).
NOISY_PATH = re.compile(
    r"seconds|_us\b|per_sec|ratio|speedup|overhead|ipc"
    r"|cycles|instructions|cache_references|cache_misses|branch_misses"
    r"|resident|wall|worker|elapsed|dropped_events|buffered_events")

# Paths ignored outright: environment identity, not run behaviour.
IGNORED_PATH = re.compile(r"\bpath\b|hostname|timestamp")


def fail_usage(message):
    print(f"tane_insight: {message}", file=sys.stderr)
    print(__doc__.strip(), file=sys.stderr)
    sys.exit(2)


def load(path):
    def fail(message):
        print(f"tane_insight: FAIL: {message}", file=sys.stderr)
        sys.exit(2)
    return jsonio.load_json(path, fail)


def classify(path_text):
    if IGNORED_PATH.search(path_text):
        return "ignored"
    if NOISY_PATH.search(path_text):
        return "noisy"
    return "exact"


def within_band(a, b, rel_tol):
    if a == b:
        return True
    scale = max(abs(a), abs(b))
    return abs(a - b) <= rel_tol * scale


def diff_docs(a, b, rel_tol, path="", problems=None):
    if problems is None:
        problems = []
    where = path or "<root>"
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            child = f"{path}.{key}" if path else str(key)
            if key not in a:
                problems.append(f"{child}: only in B")
            elif key not in b:
                problems.append(f"{child}: only in A")
            else:
                diff_docs(a[key], b[key], rel_tol, child, problems)
        return problems
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            problems.append(f"{where}: length {len(a)} vs {len(b)}")
            return problems
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            diff_docs(item_a, item_b, rel_tol, f"{path}[{index}]", problems)
        return problems
    # bool is an int in Python; compare it as an exact value, never banded.
    a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
    b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
    if a_num and b_num:
        kind = classify(where)
        if kind == "ignored":
            return problems
        if kind == "noisy":
            if not within_band(a, b, rel_tol):
                problems.append(
                    f"{where}: {a} vs {b} outside the ±{rel_tol:.0%} band")
        elif a != b:
            problems.append(f"{where}: {a} != {b} (deterministic field)")
        return problems
    if type(a) is not type(b):
        problems.append(f"{where}: type {type(a).__name__} vs "
                        f"{type(b).__name__}")
        return problems
    if a != b and classify(where) != "ignored":
        problems.append(f"{where}: {a!r} != {b!r}")
    return problems


def artifact_kind(doc):
    if "schema_version" in doc and "metrics" in doc:
        return f"run report (schema {doc['schema_version']})"
    if doc.get("benchmark"):
        return f"benchmark {doc['benchmark']!r}"
    if isinstance(doc.get("findings"), list):
        return f"static-analysis baseline ({doc.get('tool', 'tane-lint')})"
    return "unknown artifact"


def diff_baselines(doc_a, doc_b, paths):
    """Set-diff two lint/analyzer baselines. Finding ids are content-
    addressed (`rule:path:normalized-line`), so this reads as a findings
    changelog: entries only in A were fixed, entries only in B are new."""
    set_a = set(doc_a["findings"])
    set_b = set(doc_b["findings"])
    fixed = sorted(set_a - set_b)
    new = sorted(set_b - set_a)
    by_rule = {}
    for identity in set_b:
        by_rule[identity.split(":", 1)[0]] = \
            by_rule.get(identity.split(":", 1)[0], 0) + 1
    if not fixed and not new:
        print(f"tane_insight: baseline diff OK — {paths[0]} and "
              f"{paths[1]} carry the same {len(set_a)} finding(s)")
        return 0
    print(f"tane_insight: baselines differ: {len(fixed)} fixed, "
          f"{len(new)} new ({paths[0]} -> {paths[1]})")
    for identity in fixed:
        print(f"  fixed: {identity}")
    for identity in new:
        print(f"  new:   {identity}")
    if by_rule:
        summary = ", ".join(f"{rule}={count}"
                            for rule, count in sorted(by_rule.items()))
        print(f"  remaining in {paths[1]}: {summary}")
    return 1


def run_diff(argv):
    rel_tol = 0.5
    paths = []
    for arg in argv:
        if arg.startswith("--rel-tol="):
            try:
                rel_tol = float(arg.split("=", 1)[1])
            except ValueError:
                fail_usage(f"bad --rel-tol value: {arg}")
            if rel_tol < 0:
                fail_usage("--rel-tol must be >= 0")
        elif arg.startswith("--"):
            fail_usage(f"unknown flag {arg}")
        else:
            paths.append(arg)
    if len(paths) != 2:
        fail_usage("diff needs exactly two artifact paths")
    doc_a, doc_b = load(paths[0]), load(paths[1])
    kind_a, kind_b = artifact_kind(doc_a), artifact_kind(doc_b)
    if kind_a != kind_b:
        print(f"tane_insight: comparing different kinds: {kind_a} vs "
              f"{kind_b}", file=sys.stderr)
        return 1
    if kind_a.startswith("static-analysis baseline"):
        return diff_baselines(doc_a, doc_b, paths)
    problems = diff_docs(doc_a, doc_b, rel_tol)
    if problems:
        print(f"tane_insight: {len(problems)} difference(s) between "
              f"{paths[0]} and {paths[1]} ({kind_a}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"tane_insight: diff OK — {paths[0]} and {paths[1]} agree "
          f"({kind_a}, noisy fields within ±{rel_tol:.0%})")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "diff":
        return run_diff(argv[2:])
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
