"""Entry point so `python3 tools/tane_analyzer` works directly."""

import os
import sys

PACKAGE_PARENT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if PACKAGE_PARENT not in sys.path:
    sys.path.insert(0, PACKAGE_PARENT)

from tane_analyzer import driver  # noqa: E402

if __name__ == "__main__":
    sys.exit(driver.main(sys.argv))
