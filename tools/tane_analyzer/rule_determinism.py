"""determinism: no hash-order iteration in output-affecting TUs.

The repo's contract is byte-identical output for the same input and
flags, across thread counts (DESIGN.md §7). `unordered_map`/
`unordered_set` iteration order is implementation- and seed-defined, so a
range-for (or an explicit `.begin()` iterator walk) over one inside the
TUs that shape results — `src/core`, `src/partition`, `src/lattice`,
`src/analysis` — silently breaks that contract the day someone appends to
a vector inside the loop.

A loop passes if the enclosing function visibly re-sorts at or after the
loop (any `sort`/`stable_sort`/`partial_sort`/`nth_element` call whose
position is not before the loop), because then the hash order is washed
out before anything observable. Everything else needs a
`tane-analyzer: allow(determinism)` waiver explaining why the order
cannot reach the output.
"""

RULE = "determinism"

SCOPED_DIR_PREFIXES = (
    "src/core/", "src/partition/", "src/lattice/", "src/analysis/")

SORT_CALL_NAMES = {"sort", "stable_sort", "partial_sort", "nth_element"}


def _is_unordered(program, source, loop):
    if "unordered_map" in loop.container or \
            "unordered_set" in loop.container:
        return True
    words = set(loop.words)
    if words & set(source.unordered_decls):
        return True
    return bool(words & program.unordered_names)


def run(program, emit):
    for source in program.files.values():
        path = source.rel_path.replace("\\", "/")
        if not path.startswith(SCOPED_DIR_PREFIXES):
            continue
        for func, loop in source.all_range_loops():
            if not _is_unordered(program, source, loop):
                continue
            if func is not None:
                sorted_after = any(
                    call.name in SORT_CALL_NAMES and
                    call.offset >= loop.offset
                    for call in func.calls)
                if sorted_after:
                    continue
            shape = ("iterator loop" if loop.is_iterator_loop
                     else "range-for")
            emit(RULE, source, loop.line,
                 f"{shape} over unordered container `{loop.container}` in "
                 "an output-affecting TU: hash iteration order is "
                 "implementation-defined and breaks the byte-identical "
                 "contract — sort what this loop feeds, or waive with the "
                 "reason the order cannot reach the output")
