"""Frontend-neutral IR for tane-analyzer.

Both frontends (clang.cindex and the token-level micro reader) lower a
translation unit to one `SourceFile`. Rules consume a `Program` — the whole
set of SourceFiles plus cross-file name indexes — and never look at raw
text except to anchor findings to a line.

Everything here is deliberately name-based rather than type-based: the
micro frontend cannot do full type resolution, and the rules are written to
be correct under over-approximation (an op we mistakenly treat as atomic
becomes a finding a human reviews, never a silent pass).
"""

from dataclasses import dataclass, field


# std::atomic member functions, with the number of memory_order arguments a
# fully explicit call must name. compare_exchange must spell both the
# success and the failure order; the single-order overload derives a
# failure order silently (and `acq_rel`'s derived failure order is
# `acquire`, which is easy to misread).
ATOMIC_OPS = {
    "load": 1,
    "store": 1,
    "exchange": 1,
    "fetch_add": 1,
    "fetch_sub": 1,
    "fetch_and": 1,
    "fetch_or": 1,
    "fetch_xor": 1,
    "compare_exchange_strong": 2,
    "compare_exchange_weak": 2,
    # atomic_flag's test_and_set/clear are omitted on purpose: the repo
    # does not use atomic_flag, and `clear` collides with every container
    # in a name-based frontend.
    # wait takes an order; the notify pair takes none.
    "wait": 1,
    "notify_one": 0,
    "notify_all": 0,
}

ORDER_NAMES = ("relaxed", "consume", "acquire", "release", "acq_rel",
               "seq_cst")

# Orders at least as strong as `release` for a store side, and at least as
# strong as `acquire` for a load side. acq_rel on a pure load/store is
# ill-formed, so it only appears in the RMW sets.
RELEASE_OR_STRONGER = {"release", "acq_rel", "seq_cst"}
ACQUIRE_OR_STRONGER = {"acquire", "acq_rel", "seq_cst"}


@dataclass
class AtomicOp:
    op: str                      # "load", "store", "fetch_add", ...
    obj: str                     # receiver expression, e.g. "slot.seq"
    words: tuple                 # identifiers inside obj, e.g. ("slot","seq")
    orders: tuple                # normalized order names found in the args
    n_args: int                  # total argument count (for CAS forms)
    line: int
    offset: int                  # position in the stripped text
    is_fence: bool = False

    @property
    def explicit_orders(self):
        return len(self.orders)


@dataclass
class Fence:
    order: str                   # normalized order name, "" if unknown
    line: int
    offset: int


@dataclass
class Call:
    name: str                    # last identifier: "Append"
    scope: str                   # explicit qualifier as written: "FlightRecorder"
    receiver: str                # receiver base identifier: "out" ("" if free)
    receiver_type: str           # resolved local/param type name, "" unknown
    line: int
    offset: int
    receiver_words: tuple = ()   # all identifiers in the receiver expression


@dataclass
class LocalStatic:
    line: int
    offset: int
    constinit: bool
    text: str                    # one-line declaration excerpt


@dataclass
class RangeLoop:
    container: str               # container expression text
    words: tuple                 # identifiers inside the expression
    line: int
    offset: int
    is_iterator_loop: bool = False


@dataclass
class FunctionInfo:
    name: str                    # "Render"
    qual: str                    # "FlightRecorder::Render" (best effort)
    cls: str                     # enclosing/explicit class name, "" if free
    line: int
    start: int                   # offset of the body '{'
    end: int                     # offset of the matching '}'
    calls: list = field(default_factory=list)
    atomic_ops: list = field(default_factory=list)
    fences: list = field(default_factory=list)
    range_loops: list = field(default_factory=list)
    local_statics: list = field(default_factory=list)
    uses_new: list = field(default_factory=list)     # lines with `new`
    local_types: dict = field(default_factory=dict)  # var name -> type name

    def contains(self, offset):
        return self.start <= offset <= self.end


@dataclass
class Protocol:
    kind: str                    # "seqlock" | "spsc-ring" | "chase-lev" | "single-writer"
    words: tuple                 # protected word names, may be empty
    line: int


@dataclass
class SourceFile:
    rel_path: str
    raw_lines: list
    protocol: object = None              # Protocol or None
    functions: list = field(default_factory=list)
    atomic_decls: dict = field(default_factory=dict)     # name -> line
    unordered_decls: dict = field(default_factory=dict)  # name -> (kind, line)
    handler_regs: list = field(default_factory=list)     # (func name, line)
    # Operator-form accesses to declared-atomic names (`x++`, `x = v`):
    # implicit seq_cst, collected by the frontend with class-aware
    # disambiguation (same name may be atomic in one class and plain in
    # another).
    implicit_atomic_ops: list = field(default_factory=list)
    # Ops/loops that fell outside any recognized function body (at file
    # scope, or in a body the frontend failed to delimit). Rules still see
    # them for the per-op checks; function-shaped checks skip them.
    orphan_atomic_ops: list = field(default_factory=list)
    orphan_range_loops: list = field(default_factory=list)

    def all_atomic_ops(self):
        for func in self.functions:
            for op in func.atomic_ops:
                yield func, op
        for op in self.orphan_atomic_ops:
            yield None, op

    def all_range_loops(self):
        for func in self.functions:
            for loop in func.range_loops:
                yield func, loop
        for loop in self.orphan_range_loops:
            yield None, loop

    def function_at(self, offset):
        """Innermost recorded function containing `offset` (bodies of
        in-class definitions nest inside nothing else we record, so the
        smallest span wins)."""
        best = None
        for func in self.functions:
            if func.contains(offset):
                if best is None or func.end - func.start < best.end - best.start:
                    best = func
        return best


class Program:
    """The analyzed tree: every SourceFile plus cross-file indexes."""

    def __init__(self, files):
        self.files = files  # rel_path -> SourceFile
        self.atomic_names = set()
        self.unordered_names = set()
        self.functions_by_name = {}   # last component -> [(SourceFile, FunctionInfo)]
        for source in files.values():
            self.atomic_names.update(source.atomic_decls)
            self.unordered_names.update(source.unordered_decls)
            for func in source.functions:
                self.functions_by_name.setdefault(func.name, []).append(
                    (source, func))

    def resolve_call(self, source, caller, call):
        """Candidate (SourceFile, FunctionInfo) definitions for a call.
        Empty list means external. Resolution prefers, in order: an
        explicit `A::B` qualifier, a typed receiver, the caller's own
        class, then any definition with the same name (over-approximate on
        purpose — for signal-safety a missed edge is worse than an extra
        one)."""
        candidates = self.functions_by_name.get(call.name, [])
        if not candidates or call.scope == "std":
            return []
        if call.scope:
            scoped = [(s, f) for s, f in candidates
                      if f.cls == call.scope.split("::")[-1]]
            if scoped:
                return scoped
        if call.receiver:
            if call.receiver_type:
                typed = [(s, f) for s, f in candidates
                         if f.cls == call.receiver_type]
                # A typed receiver that matches no known class is a call
                # into an external type (std::string out; out.size()):
                # don't smear it over every same-named method.
                return typed
            return candidates
        if caller is not None and caller.cls:
            own = [(s, f) for s, f in candidates if f.cls == caller.cls]
            if own:
                return own
        # Free call with no qualifier: a free function (or
        # anonymous-namespace helper) in any file.
        free = [(s, f) for s, f in candidates if not f.cls]
        return free or candidates
