"""tane-analyzer: semantic checks for the contracts tane-lint's regexes
cannot see — atomics memory-order discipline (with per-file lock-free
protocol contracts), async-signal-safety of the postmortem path, hash-order
determinism in output-affecting translation units, and partition-handle
pairing.

Two interchangeable frontends produce the same IR (`model.SourceFile`):

  clang  — libclang (clang.cindex) over the exported compile_commands.json;
           used automatically when the bindings and a compilation database
           are present.
  micro  — a built-in token-level C++ reader; no dependencies, runs
           everywhere, and is the reference frontend for the fixture tests.

The rules (`rule_*.py`) only see the IR, so both frontends gate the same
contracts. See DESIGN.md §16 for the protocol invariants enforced here.
"""

__all__ = ["driver", "model"]
