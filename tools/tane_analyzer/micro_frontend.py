"""Token-level C++ frontend for tane-analyzer.

Lowers a translation unit to `model.SourceFile` using the shared
comment/string stripper plus paren-balanced scanning — no preprocessor, no
type checker. The design rule throughout: prefer over-approximation (treat
an ambiguous site as checkable) so a parser miss surfaces as a reviewable
finding rather than a silent pass.

Known, accepted approximations (all covered by fixture tests or documented
in DESIGN.md §16):
  * function bodies are found by `name(args) [stuff] {`-shaped scanning;
    lambdas are deliberately not recorded, so their contents attribute to
    the enclosing function (what the signal-safety and seqlock rules want);
  * receivers are typed only via same-body declarations and parameters;
  * atomic-ness of `x.load(...)` is decided by a cross-file set of names
    declared with std::atomic<...> anywhere in the tree.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
import cpptext  # noqa: E402

from . import model  # noqa: E402

# Statement keywords that look like `name ( ... ) {` but are not calls or
# function definitions.
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "else", "do", "case", "goto", "new", "delete", "throw", "co_return",
    "co_await", "co_yield", "static_assert", "decltype", "alignas",
    "noexcept", "defined", "assert", "constexpr", "consteval", "constinit",
    "requires", "typeid",
}

PROTOCOL_RE = re.compile(
    r"//\s*tane-atomics:\s*([a-z-]+)\s*(?:\(([^)\n]*)\))?")
ATOMIC_DECL_RE = re.compile(
    r"\bstd\s*::\s*atomic\s*<")
ATOMIC_FLAG_DECL_RE = re.compile(
    r"\bstd\s*::\s*atomic_flag\b\s*[&*]?\s*([A-Za-z_]\w*)")
UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(map|set|multimap|multiset)\s*<")
HANDLER_REG_RES = (
    re.compile(r"\.\s*sa_handler\s*=\s*&?\s*([A-Za-z_][\w:]*)"),
    re.compile(r"\.\s*sa_sigaction\s*=\s*&?\s*([A-Za-z_][\w:]*)"),
    re.compile(r"\bsignal\s*\(\s*[\w+\s]+,\s*&?\s*([A-Za-z_][\w:]*)\s*\)"),
)
FENCE_RE = re.compile(
    r"\b(?:std\s*::\s*)?atomic_(?:thread|signal)_fence\s*\(")
MEMBER_OP_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(sorted(model.ATOMIC_OPS)) + r")\s*\(")
ORDER_IN_ARG_RE = re.compile(
    r"\bmemory_order(?:_|\s*::\s*)(relaxed|consume|acquire|release|"
    r"acq_rel|seq_cst)\b")
CALL_RE = re.compile(
    r"([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_~]\w*)*)\s*\(")
STATIC_RE = re.compile(r"\bstatic\b(?!_cast|_assert)")
NEW_RE = re.compile(r"(?<![\w.])new\b")
FOR_RE = re.compile(r"\bfor\s*\(")
LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}(]|\bconst\s)\s*"
    r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*(?:\s*<[^;<>]*>)?)"
    r"(?:\s+[&*]?|\s*[&*])\s*([A-Za-z_]\w*)\s*(?:=|\(|\{|;|,)")

DECL_KEYWORDS = CONTROL_KEYWORDS | {
    "const", "auto", "void", "int", "bool", "char", "float", "double",
    "unsigned", "signed", "long", "short", "struct", "class", "enum",
    "using", "typedef", "namespace", "template", "typename", "public",
    "private", "protected", "virtual", "override", "final", "inline",
    "static", "extern", "mutable", "volatile", "friend", "operator",
    "break", "continue", "default", "try", "this",
}


def _identifier_words(expr):
    return tuple(re.findall(r"[A-Za-z_]\w*", expr))


def _prev_nonspace(text, i):
    j = i - 1
    while j >= 0 and text[j] in " \t\n":
        j -= 1
    return j


def _receiver_before(text, dot_index):
    """Walk backwards from the `.`/`->` of a member access and return the
    receiver expression, e.g. `rings_[r].slots[s]` for
    `rings_[r].slots[s].seq`. Balanced `]`/`)` groups are skipped whole."""
    j = dot_index - 1
    end = None
    while j >= 0:
        c = text[j]
        if c in " \t\n":
            j -= 1
            continue
        if end is None:
            end = j + 1
        if c in ")]":
            depth = 0
            while j >= 0:
                if text[j] in ")]":
                    depth += 1
                elif text[j] in "([":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
            continue
        if c.isalnum() or c == "_":
            while j >= 0 and (text[j].isalnum() or text[j] == "_"):
                j -= 1
            # keep walking only through chained accesses
            k = _prev_nonspace(text, j + 1)
            if k >= 0 and (text[k] == "." or
                           (k >= 1 and text[k - 1:k + 1] == "->") or
                           (k >= 1 and text[k - 1:k + 1] == "::")):
                if text[k] == ".":
                    j = k - 1
                else:
                    j = k - 2
                continue
            break
        break
    if end is None:
        return ""
    return text[j + 1:end].strip()


def _find_class_spans(code):
    """[(start, end, name)] body spans of class/struct/union definitions."""
    spans = []
    for match in re.finditer(r"\b(class|struct|union)\s+([A-Za-z_]\w*)",
                             code):
        i = match.end()
        # Skip base-class lists and attributes up to '{', bailing on ';'
        # (forward declaration) or '(' (e.g. `struct tm` parameter usage).
        depth_guard = 0
        while i < len(code):
            c = code[i]
            if c == "{":
                close = _match_brace(code, i)
                if close != -1:
                    spans.append((i, close, match.group(2)))
                break
            if c in ";)(=" and depth_guard == 0:
                break
            if c == "<":
                depth_guard += 1
            elif c == ">":
                depth_guard = max(0, depth_guard - 1)
            i += 1
    return spans


def _match_brace(code, open_index):
    depth = 0
    for i in range(open_index, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _find_functions(code):
    """Detect function definitions: `qualified-name ( args ) trailers {`.
    Returns [(name_offset, qual_name, body_start, body_end)]."""
    results = []
    for match in CALL_RE.finditer(code):
        qual = re.sub(r"\s+", "", match.group(1))
        last = qual.split("::")[-1].lstrip("~")
        if last in CONTROL_KEYWORDS or qual.split("::")[0] in (
                "if", "for", "while", "switch"):
            continue
        open_paren = match.end() - 1
        close_paren = cpptext.matching_paren(code, open_paren)
        if close_paren == -1:
            continue
        i = close_paren + 1
        is_def = False
        # Consume trailers: const, noexcept(...), ->type, annotation
        # macros like TANE_REQUIRES(mu), and a ctor initializer list.
        while i < len(code):
            c = code[i]
            if c in " \t\n":
                i += 1
            elif c == "{":
                is_def = True
                break
            elif c in ";=," or c in ")]":
                break
            elif c == ":":
                if i + 1 < len(code) and code[i + 1] == ":":
                    break  # unexpected `::`, not a def
                # ctor initializer list: consume balanced (), {} pairs
                # until the body '{'.
                i += 1
                while i < len(code):
                    c2 = code[i]
                    if c2 == "(":
                        nxt = cpptext.matching_paren(code, i)
                        if nxt == -1:
                            break
                        i = nxt + 1
                    elif c2 == "{":
                        # `{}` member-init vs body: a body brace follows
                        # whitespace after a ')' or '}' or identifier; a
                        # member-init brace directly follows an identifier.
                        k = _prev_nonspace(code, i)
                        if k >= 0 and (code[k].isalnum() or code[k] == "_"):
                            nxt = _match_brace(code, i)
                            if nxt == -1:
                                break
                            i = nxt + 1
                        else:
                            break
                    elif c2 == ";":
                        break
                    else:
                        i += 1
                if i < len(code) and code[i] == "{":
                    is_def = True
                break
            elif c == "(":
                nxt = cpptext.matching_paren(code, i)
                if nxt == -1:
                    break
                i = nxt + 1
            elif c.isalnum() or c == "_" or c in "<>&*-":
                i += 1
            else:
                break
        if not is_def:
            continue
        body_start = i
        body_end = _match_brace(code, body_start)
        if body_end == -1:
            continue
        # Reject statements like `Foo bar{...}` misread via `bar(...)`:
        # a definition's name must not be preceded by `.`/`->` (member
        # call followed by a braced arg is not valid anyway).
        k = _prev_nonspace(code, match.start(1))
        if k >= 0 and code[k] in ".":
            continue
        results.append((match.start(1), qual, body_start, body_end))
    return results


def _parse_args(code, open_paren):
    close = cpptext.matching_paren(code, open_paren)
    if close == -1:
        return [], open_paren
    return cpptext.split_top_level_args(code[open_paren + 1:close]), close


def _scan_unordered_decls(code, decls):
    for match in UNORDERED_DECL_RE.finditer(code):
        kind = "unordered_" + match.group(1)
        i = match.end() - 1  # at '<'
        depth = 0
        while i < len(code):
            c = code[i]
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth == 0:
                    break
            elif c == ";":
                break
            i += 1
        tail = code[i + 1:i + 80]
        name_match = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)", tail)
        if name_match:
            name = name_match.group(1)
            if name not in DECL_KEYWORDS:
                decls[name] = (kind, cpptext.line_of_offset(code, match.start()))


def _scan_atomic_decls(code, decls, decl_offsets):
    for match in ATOMIC_DECL_RE.finditer(code):
        i = match.end() - 1  # at '<'
        depth = 0
        while i < len(code):
            c = code[i]
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth == 0:
                    break
            elif c == ";":
                break
            i += 1
        tail = code[i + 1:i + 80]
        name_match = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)", tail)
        if name_match:
            name = name_match.group(1)
            if name not in DECL_KEYWORDS:
                decls[name] = cpptext.line_of_offset(code, match.start())
                decl_offsets.setdefault(name, []).append(match.start())
    for match in ATOMIC_FLAG_DECL_RE.finditer(code):
        name = match.group(1)
        if name not in DECL_KEYWORDS:
            decls[name] = cpptext.line_of_offset(code, match.start())
            decl_offsets.setdefault(name, []).append(match.start())


def _scan_local_types(code, func):
    """Very light declaration typing inside one body: `Type name(...)`,
    `Type name = ...`, `Type* name = ...`, plus parameters from the
    signature. Enough to resolve `out.Append(...)` to SigsafeWriter."""
    body = code[func.start:func.end]
    for match in LOCAL_DECL_RE.finditer(body):
        type_name = match.group(1)
        base = type_name.split("<")[0].split("::")[-1].strip()
        var = match.group(2)
        if base in DECL_KEYWORDS or var in DECL_KEYWORDS or not base:
            continue
        # Two identifiers in a row is declaration-shaped; lowercase types
        # (size_t, string_view) are kept so member calls on them resolve
        # to "external std type", not to every same-named repo method.
        func.local_types.setdefault(var, base)


def _scan_signature_types(code, name_offset, body_start, func):
    sig = code[name_offset:body_start]
    open_paren = sig.find("(")
    if open_paren == -1:
        return
    close = cpptext.matching_paren(sig, open_paren)
    if close == -1:
        return
    for param in cpptext.split_top_level_args(sig[open_paren + 1:close]):
        tokens = re.findall(r"[A-Za-z_][\w:]*", param)
        if len(tokens) < 2:
            continue
        type_base = tokens[-2].split("::")[-1]
        if type_base in DECL_KEYWORDS:
            continue
        func.local_types.setdefault(tokens[-1], type_base)


def parse_file(root, rel_path):
    with open(os.path.join(root, rel_path), encoding="utf-8") as handle:
        raw = handle.read()
    code = cpptext.strip_comments_and_strings(raw)
    source = model.SourceFile(rel_path=rel_path, raw_lines=raw.splitlines())

    proto = PROTOCOL_RE.search(raw)
    if proto:
        words = tuple(w.strip() for w in (proto.group(2) or "").split(",")
                      if w.strip())
        source.protocol = model.Protocol(
            kind=proto.group(1), words=words,
            line=raw.count("\n", 0, proto.start()) + 1)

    atomic_decl_offsets = {}
    _scan_atomic_decls(code, source.atomic_decls, atomic_decl_offsets)
    _scan_unordered_decls(code, source.unordered_decls)

    for pattern in HANDLER_REG_RES:
        for match in pattern.finditer(code):
            name = match.group(1).split("::")[-1]
            if name not in ("SIG_DFL", "SIG_IGN"):
                source.handler_regs.append(
                    (name, cpptext.line_of_offset(code, match.start())))

    class_spans = _find_class_spans(code)

    def class_of(offset):
        best = ""
        best_len = None
        for start, end, name in class_spans:
            if start <= offset <= end:
                if best_len is None or end - start < best_len:
                    best, best_len = name, end - start
        return best

    defs = _find_functions(code)
    def_name_offsets = {d[0] for d in defs}
    for name_offset, qual, body_start, body_end in defs:
        parts = qual.split("::")
        cls = parts[-2] if len(parts) >= 2 else class_of(name_offset)
        name = parts[-1].lstrip("~")
        func = model.FunctionInfo(
            name=name,
            qual=(cls + "::" + name) if cls else name,
            cls=cls,
            line=cpptext.line_of_offset(code, name_offset),
            start=body_start,
            end=body_end)
        _scan_signature_types(code, name_offset, body_start, func)
        _scan_local_types(code, func)
        source.functions.append(func)

    # Keep only outermost bodies for "orphan" attribution, but note that
    # in-class method definitions are separate spans, not nested in a
    # recorded function (the class body is not a function).
    def func_at(offset):
        return source.function_at(offset)

    # --- atomic fences ---------------------------------------------------
    for match in FENCE_RE.finditer(code):
        args, _ = _parse_args(code, match.end() - 1)
        order = ""
        for arg in args:
            m = ORDER_IN_ARG_RE.search(arg)
            if m:
                order = m.group(1)
        fence = model.Fence(order=order,
                            line=cpptext.line_of_offset(code, match.start()),
                            offset=match.start())
        func = func_at(match.start())
        if func is not None:
            func.fences.append(fence)

    # --- atomic member operations ---------------------------------------
    atomic_names_here = set(source.atomic_decls)
    for match in MEMBER_OP_RE.finditer(code):
        op_name = match.group(1)
        receiver = _receiver_before(code, match.start())
        words = _identifier_words(receiver)
        op_offset = match.start(1)
        args, _ = _parse_args(code, match.end() - 1)
        orders = []
        for arg in args:
            m = ORDER_IN_ARG_RE.search(arg)
            if m:
                orders.append(m.group(1))
        op = model.AtomicOp(
            op=op_name, obj=receiver, words=words, orders=tuple(orders),
            n_args=len(args),
            line=cpptext.line_of_offset(code, op_offset),
            offset=op_offset)
        # Attach to the op stream only if the receiver is plausibly
        # atomic; the atomic-ness decision against the *global* name set
        # happens in the rule (cross-file members). Stash everything and
        # let the rule filter.
        func = func_at(op_offset)
        if func is not None:
            func.atomic_ops.append(op)
        else:
            source.orphan_atomic_ops.append(op)
    del atomic_names_here

    # --- loops -----------------------------------------------------------
    for match in FOR_RE.finditer(code):
        open_paren = match.end() - 1
        close = cpptext.matching_paren(code, open_paren)
        if close == -1:
            continue
        header = code[open_paren + 1:close]
        loop = None
        if ";" not in header:
            colon = _range_for_colon(header)
            if colon != -1:
                container = header[colon + 1:].strip()
                loop = model.RangeLoop(
                    container=container,
                    words=_identifier_words(container),
                    line=cpptext.line_of_offset(code, match.start()),
                    offset=match.start())
        else:
            begin = re.search(r"([A-Za-z_][\w.\->\[\]]*)\s*(?:\.|->)\s*"
                              r"c?begin\s*\(", header)
            if begin:
                container = begin.group(1)
                loop = model.RangeLoop(
                    container=container,
                    words=_identifier_words(container),
                    line=cpptext.line_of_offset(code, match.start()),
                    offset=match.start(),
                    is_iterator_loop=True)
        if loop is None:
            continue
        func = func_at(match.start())
        if func is not None:
            func.range_loops.append(loop)
        else:
            source.orphan_range_loops.append(loop)

    # --- calls, local statics, `new` -------------------------------------
    # Atomic-op sites stay in the call stream on purpose: whether
    # `x.wait(...)` is an atomic wait or a condition-variable wait depends
    # on the cross-file atomic name set, which only the rules have. The
    # signal-safety rule filters true atomic ops; everything else resolves
    # as an ordinary call.
    for match in CALL_RE.finditer(code):
        qual = re.sub(r"\s+", "", match.group(1))
        parts = qual.split("::")
        name = parts[-1].lstrip("~")
        if name in CONTROL_KEYWORDS or name in (
                "static_cast", "dynamic_cast", "const_cast",
                "reinterpret_cast"):
            continue
        if match.start(1) in def_name_offsets:
            continue  # that's a definition header, not a call
        func = func_at(match.start(1))
        if func is None:
            continue
        k = _prev_nonspace(code, match.start(1))
        receiver = ""
        receiver_type = ""
        rec_words = ()
        is_member = False
        if k >= 0 and (code[k] == "." or (k >= 1 and
                                          code[k - 1:k + 1] == "->")):
            is_member = True
            dot = k if code[k] == "." else k - 1
            receiver_expr = _receiver_before(code, dot)
            rec_words = _identifier_words(receiver_expr)
            receiver = rec_words[0] if rec_words else ""
            receiver_type = func.local_types.get(receiver, "")
        elif k >= 0 and (code[k].isalnum() or code[k] == "_"):
            # `Type name(...)`: a declaration whose initializer calls the
            # Type constructor. Record the construction, and type the
            # variable for later member-call resolution.
            j = k
            while j >= 0 and (code[j].isalnum() or code[j] == "_"):
                j -= 1
            prev_token = code[j + 1:k + 1]
            if prev_token in DECL_KEYWORDS:
                if prev_token == "return":
                    pass  # plain call in a return statement
                else:
                    continue
            else:
                # declaration: Type var(...) — the "call" target is the
                # type's constructor; the variable name is what we
                # matched. Two identifiers in a row cannot be a call.
                base = prev_token.split("::")[-1]
                if base:
                    func.local_types.setdefault(name, base)
                    source_call = model.Call(
                        name=base, scope="", receiver="", receiver_type="",
                        line=cpptext.line_of_offset(code, match.start(1)),
                        offset=match.start(1))
                    func.calls.append(source_call)
                continue
        scope = "::".join(parts[:-1]) if len(parts) > 1 else ""
        if not is_member and not scope and name in func.local_types:
            continue  # variable used as functor? treat as unknown-but-local
        call = model.Call(
            name=name, scope=scope, receiver=receiver,
            receiver_type=receiver_type,
            line=cpptext.line_of_offset(code, match.start(1)),
            offset=match.start(1),
            receiver_words=rec_words)
        func.calls.append(call)

    for match in STATIC_RE.finditer(code):
        func = func_at(match.start())
        if func is None:
            continue
        stmt_end = code.find(";", match.start())
        if stmt_end == -1:
            stmt_end = match.start() + 120
        window = code[max(func.start, match.start() - 32):stmt_end]
        text_line = cpptext.line_of_offset(code, match.start())
        func.local_statics.append(model.LocalStatic(
            line=text_line, offset=match.start(),
            constinit="constinit" in window,
            text=" ".join(code[match.start():stmt_end].split())[:80]))

    for match in NEW_RE.finditer(code):
        func = func_at(match.start())
        if func is not None:
            func.uses_new.append(
                cpptext.line_of_offset(code, match.start()))

    _scan_implicit_atomic_ops(code, source, atomic_decl_offsets,
                              class_spans)

    return source


def _scan_implicit_atomic_ops(code, source, atomic_decl_offsets,
                              class_spans):
    """Operator-form accesses (`x = v`, `x++`, `x += v`) to names declared
    std::atomic in this file. Class-aware: a name that is atomic in one
    class and a plain member in another (DiskPartitionStore::pool_ vs
    MemoryPartitionStore::pool_) only counts inside the class that
    declared it atomic."""
    if not atomic_decl_offsets:
        return

    def innermost_class(offset):
        best = None
        best_len = None
        for start, end, name in class_spans:
            if start <= offset <= end:
                if best_len is None or end - start < best_len:
                    best, best_len = name, end - start
        return best

    decl_classes = {name: {innermost_class(off) for off in offsets}
                    for name, offsets in atomic_decl_offsets.items()}
    pattern = re.compile(
        r"(?<![\w.>])(" +
        "|".join(re.escape(n) for n in sorted(atomic_decl_offsets)) +
        r")\s*(\+\+|--|\+=|-=|\|=|&=|\^=|=(?![=]))")
    for match in pattern.finditer(code):
        name = match.group(1)
        k = _prev_nonspace(code, match.start(1))
        # A type token, `*`, `&` or `,` before the name makes this a
        # declaration (with initializer) or a shadowing local, not an
        # atomic access.
        if k >= 0 and (code[k].isalnum() or code[k] in "_>&*,"):
            continue
        # Class attribution of the use site: the surrounding class body,
        # or — for out-of-class method definitions — the class named in
        # the enclosing function's qualifier. A file-scope atomic (None
        # in decl_classes) matches a use anywhere.
        use_cls = innermost_class(match.start(1))
        if use_cls is None:
            func = source.function_at(match.start(1))
            if func is not None and func.cls:
                use_cls = func.cls
        if None not in decl_classes[name] and \
                use_cls not in decl_classes[name]:
            continue
        source.implicit_atomic_ops.append(model.AtomicOp(
            op="operator" + match.group(2).strip(),
            obj=name, words=(name,), orders=(), n_args=0,
            line=cpptext.line_of_offset(code, match.start(1)),
            offset=match.start(1)))


def _range_for_colon(header):
    """Index of the range-for `:` in a for-header, skipping `::`."""
    depth = 0
    i = 0
    while i < len(header):
        c = header[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(header) and header[i + 1] == ":":
                i += 2
                continue
            if i > 0 and header[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


def load_program(root, rel_paths):
    files = {}
    for rel_path in rel_paths:
        files[rel_path] = parse_file(root, rel_path)
    return model.Program(files)
