"""handle-discipline: Acquire/Release pairing for partition handles.

`PartitionStore::Acquire` pins a partition (possibly faulting it back in
from spill) and hands out a handle whose refcount the caller now owns.
The discipline in `src/core/tane.cc` / `src/core/pli_cache.cc` is that
every function that calls `Acquire` either releases in the same function
(`Release` / `ReleaseHandles`) or carries a waiver naming who releases and
when (the per-worker accessor LRU releases at level boundaries, for
example).

The check is deliberately flow-insensitive — presence of a paired release
anywhere in the enclosing function, not on every path. That is the same
bargain tane-lint strikes: cheap, zero false negatives for the
forgot-to-release-entirely class, and the leak-on-early-return class is
covered by the refcount assertions under ASan in tier-1 tests.
"""

RULE = "handle-discipline"

SCOPED_FILES = ("src/core/tane.cc", "src/core/pli_cache.cc")

ACQUIRE_NAMES = {"Acquire"}
RELEASE_NAMES = {"Release", "ReleaseHandles", "ReleaseAll"}


def run(program, emit):
    for rel_path in SCOPED_FILES:
        source = program.files.get(rel_path)
        if source is None:
            continue
        for func in source.functions:
            if func.name in ACQUIRE_NAMES:
                continue  # the definition that implements acquisition
            acquires = [call for call in func.calls
                        if call.name in ACQUIRE_NAMES]
            if not acquires:
                continue
            has_release = any(call.name in RELEASE_NAMES
                              for call in func.calls)
            if has_release:
                continue
            for call in acquires:
                emit(RULE, source, call.line,
                     f"`{func.qual}` acquires a partition handle but "
                     "never calls Release/ReleaseHandles; pair it in this "
                     "function or waive with the rationale naming the "
                     "owner that releases it")
