"""signal-safety: static call graph of the postmortem path.

Roots: every definition of `DumpFromSignal` plus every function installed
as a signal handler (`sa_handler = ...`, `sa_sigaction = ...`,
`signal(SIG, ...)`). From the roots we walk the resolvable call graph;
the walk must stay inside:

  * repo-internal functions listed in SIGNAL_PATH_MANIFEST — the
    reviewed, exact reachable set (both directions are checked: a newly
    reachable function and a stale manifest entry are each findings, so
    the manifest never drifts from reality);
  * the async-signal-safe externals in SAFE_EXTERNALS (raw syscall
    wrappers, mem* routines, header-only helpers that cannot allocate).

Additionally, every reachable function must not contain a non-constinit
function-local static (first use would take the C++ magic-static guard
lock inside the handler) and must not allocate (`new`).

Atomic member operations are exempt by construction: lock-free atomics
are the one synchronization tool that is async-signal-safe.

The manifest only applies when the analyzed tree actually defines
`FlightRecorder::DumpFromSignal` — fixture trees bring their own roots
and are judged on SAFE_EXTERNALS alone.
"""

from . import model

RULE = "signal-safety"

# The reviewed reachable set for the real repo, keyed by FunctionInfo.qual.
# Kept sorted; update deliberately when the postmortem path changes — the
# rule fails in BOTH directions (new reachable function, stale entry).
SIGNAL_PATH_MANIFEST = {
    "FatalSignalHandler",
    "FlightEventTypeName",
    "FlightRecorder::ClaimDump",
    "FlightRecorder::DumpFromSignal",
    "FlightRecorder::Render",
    "FlightRecorder::active",
    "FlightRecorder::active_ptr",
    "FlightRecorder::NowUs",
    "MonotonicNs",
    "SigsafeWriteFile",
    "SigsafeWriter::Append",
    "SigsafeWriter::AppendChar",
    "SigsafeWriter::AppendInt",
    "SigsafeWriter::AppendJsonEscaped",
    "SigsafeWriter::ResetTo",
    "SigsafeWriter::SigsafeWriter",
    "SigsafeWriter::size",
    "SigsafeWriter::truncated",
}

# Async-signal-safe externals (POSIX table plus compiler builtins that
# cannot allocate or lock). Matched on the call's last name component.
SAFE_EXTERNALS = {
    # raw syscall wrappers
    "open", "close", "write", "read", "fsync", "rename", "unlink",
    "clock_gettime", "raise", "signal", "kill", "_exit", "sigaction",
    "sigemptyset", "sigfillset", "sigaddset",
    # mem/str routines (no allocation, no locks)
    "memcpy", "memmove", "memset", "strlen", "strncpy", "strcmp",
    "strncmp",
    # header-only helpers that compile to arithmetic
    "min", "max", "clamp", "move", "forward", "bit_cast",
    "static_cast", "size", "data", "count_if", "get", "empty",
    "begin", "end",
    # fences compile to a barrier instruction (or nothing); no locks
    "atomic_thread_fence", "atomic_signal_fence",
}

# Known-dangerous callees get a message that says why, not just "not on
# the allowlist".
DENY_REASONS = {
    "malloc": "allocates; the allocator's internal lock deadlocks if the "
              "signal interrupted another allocation",
    "calloc": "allocates (see malloc)",
    "realloc": "allocates (see malloc)",
    "free": "takes the allocator lock (see malloc)",
    "printf": "stdio buffers and locks are not async-signal-safe",
    "fprintf": "stdio buffers and locks are not async-signal-safe",
    "snprintf": "not async-signal-safe on glibc (locale machinery may "
                "allocate); use SigsafeWriter::AppendInt",
    "vsnprintf": "not async-signal-safe (see snprintf)",
    "puts": "stdio (see printf)",
    "fwrite": "stdio (see printf)",
    "lock": "takes a lock; if the interrupted thread holds it, the "
            "handler deadlocks",
    "unlock": "mutex operation on the signal path",
    "Lock": "takes a lock (see lock)",
    "Unlock": "mutex operation on the signal path",
    "MutexLock": "takes a lock; if the interrupted thread holds it, the "
                 "handler deadlocks",
    "TANE_LOG": "logging allocates and locks",
    "TANE_CHECK": "aborts through logging, which allocates and locks",
    "exit": "runs atexit handlers, which may do anything",
    "sort": "std::sort may allocate (introsort's heap fallback is fine, "
            "but the comparator and iterator machinery are unaudited); "
            "hand-roll the ordering on the signal path",
}


def _is_atomic_member_op(program, call):
    if call.name not in model.ATOMIC_OPS:
        return False
    if not call.receiver_words:
        return False
    return bool(set(call.receiver_words) & program.atomic_names)


def _chain(parents, visited, key):
    names = []
    while key is not None:
        names.append(visited[key][1].name)
        key = parents.get(key)
    return " -> ".join(reversed(names))


def run(program, emit):
    roots = []
    for source in program.files.values():
        for func in source.functions:
            if func.name == "DumpFromSignal":
                roots.append((source, func))
        for handler_name, _line in source.handler_regs:
            for cand_source, cand_func in program.functions_by_name.get(
                    handler_name, []):
                roots.append((cand_source, cand_func))

    visited = {}
    parents = {}
    queue = []
    for source, func in roots:
        key = (source.rel_path, func.qual, func.start)
        if key not in visited:
            visited[key] = (source, func)
            parents[key] = None
            queue.append(key)

    while queue:
        key = queue.pop(0)
        source, func = visited[key]

        for static in func.local_statics:
            # constinit and constexpr statics are constant-initialized
            # at load time: no magic-static guard is ever taken.
            if not static.constinit and "constexpr" not in static.text:
                emit(RULE, source, static.line,
                     f"function-local static in `{func.qual}` (reachable "
                     f"via {_chain(parents, visited, key)}) takes the magic-static "
                     "guard lock on first use; declare it constinit so "
                     "initialization happens at load time")
        for line in func.uses_new:
            emit(RULE, source, line,
                 f"`new` in `{func.qual}` (reachable via "
                 f"{_chain(parents, visited, key)}) allocates on the signal path")

        for call in func.calls:
            if _is_atomic_member_op(program, call):
                continue
            candidates = program.resolve_call(source, func, call)
            if candidates:
                for cand_source, cand_func in candidates:
                    child_key = (cand_source.rel_path, cand_func.qual,
                                 cand_func.start)
                    if child_key not in visited:
                        visited[child_key] = (cand_source, cand_func)
                        parents[child_key] = key
                        queue.append(child_key)
                continue
            if call.name in SAFE_EXTERNALS:
                continue
            reason = DENY_REASONS.get(call.name)
            if reason is None and call.scope not in ("", "std"):
                # Qualified call into a type we know nothing about
                # (e.g. Foo::Bar with no Foo in the tree): unknown.
                reason = "unknown qualified callee"
            if reason:
                emit(RULE, source, call.line,
                     f"`{call.name}` on the signal path "
                     f"({_chain(parents, visited, key)} -> {call.name}): {reason}")
            else:
                emit(RULE, source, call.line,
                     f"`{call.name}` on the signal path "
                     f"({_chain(parents, visited, key)} -> {call.name}) is not on "
                     "the async-signal-safe allowlist; add a sigsafe "
                     "wrapper or keep it off the postmortem path")

    # Manifest check: only when the real postmortem path is in the tree.
    has_real_root = any(func.qual == "FlightRecorder::DumpFromSignal"
                        for _s, func in visited.values())
    if not has_real_root:
        return
    reached = {func.qual: (src, func) for src, func in visited.values()}
    for qual in sorted(set(reached) - SIGNAL_PATH_MANIFEST):
        src, func = reached[qual]
        emit(RULE, src, func.line,
             f"`{qual}` is now reachable from the signal path but is not "
             "in SIGNAL_PATH_MANIFEST (tools/tane_analyzer/"
             "rule_signal.py); audit it for async-signal-safety and add "
             "it deliberately")
    for qual in sorted(SIGNAL_PATH_MANIFEST - set(reached)):
        root_src, root_func = roots[0] if roots else (None, None)
        if root_src is None:
            break
        emit(RULE, root_src, root_func.line,
             f"SIGNAL_PATH_MANIFEST entry `{qual}` is no longer reachable "
             "from the signal path; drop the stale entry so the manifest "
             "stays exactly the reachable set")
