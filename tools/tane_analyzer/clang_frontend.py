"""libclang (clang.cindex) frontend for tane-analyzer.

Lowers translation units to the same `model.SourceFile` IR as the micro
frontend, but from a real AST: receivers are resolved through the type
system, calls through referenced declarations, and memory_order arguments
through the enum itself. Used automatically when the `clang` Python
bindings, a loadable libclang, and the exported compile_commands.json are
all present; `probe()` reports the first missing piece so the driver can
fall back to the micro frontend without guessing.

Only definitions inside the analyzed root are lowered — system headers
contribute nothing, which keeps the IR congruent with what the micro
frontend sees.
"""

import json
import os

from . import model

_ATOMIC_CLASS_NAMES = ("atomic", "atomic_flag", "__atomic_base")
_UNORDERED_CLASS_NAMES = ("unordered_map", "unordered_set",
                          "unordered_multimap", "unordered_multiset")


def probe(root, compdb_path):
    """Returns None when the clang frontend can run, else a reason."""
    try:
        import clang.cindex as cindex
    except Exception as error:
        return f"python clang bindings not importable ({error})"
    if not compdb_path or not os.path.exists(compdb_path):
        return (f"no compilation database at {compdb_path}; configure the "
                "default preset (CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    try:
        cindex.Index.create()
    except Exception as error:
        return f"libclang not loadable ({error})"
    return None


def _load_compile_commands(compdb_path):
    with open(compdb_path, encoding="utf-8") as handle:
        entries = json.load(handle)
    commands = {}
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        # Drop the compiler, the input file, and -o pairs.
        cleaned = []
        skip_next = False
        for arg in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if arg in ("-o", "-c"):
                skip_next = arg == "-o"
                continue
            if os.path.normpath(os.path.join(
                    entry.get("directory", "."), arg)) == path:
                continue
            cleaned.append(arg)
        commands[path] = (entry.get("directory", "."), cleaned)
    return commands


def _spelling_chain(cursor):
    parts = []
    parent = cursor.semantic_parent
    import clang.cindex as cindex
    while parent is not None and parent.kind in (
            cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL,
            cindex.CursorKind.CLASS_TEMPLATE):
        parts.append(parent.spelling)
        parent = parent.semantic_parent
    return "::".join(reversed(parts))


def _type_names(ctype):
    spelling = ctype.spelling if ctype is not None else ""
    return spelling


def _order_names_in(cursor):
    """Normalized memory_order enumerators referenced under a cursor."""
    import clang.cindex as cindex
    found = []
    for node in cursor.walk_preorder():
        if node.kind == cindex.CursorKind.DECL_REF_EXPR and \
                "memory_order" in node.spelling:
            name = node.spelling.replace("memory_order_", "")
            found.append(name)
        elif node.kind == cindex.CursorKind.DECL_REF_EXPR and \
                node.type is not None and \
                "memory_order" in node.type.spelling:
            found.append(node.spelling)
    return found


def _expr_text(cursor):
    tokens = [t.spelling for t in cursor.get_tokens()]
    return "".join(tokens)[:120]


def _lower_function(cindex, cursor, source, root):
    extent = cursor.extent
    func_cls = _spelling_chain(cursor)
    name = cursor.spelling.lstrip("~")
    func = model.FunctionInfo(
        name=name,
        qual=(func_cls + "::" + name) if func_cls else name,
        cls=func_cls,
        line=extent.start.line,
        start=extent.start.offset,
        end=extent.end.offset)

    for node in cursor.walk_preorder():
        kind = node.kind
        if kind == cindex.CursorKind.CALL_EXPR:
            callee = node.referenced
            callee_name = node.spelling or (
                callee.spelling if callee is not None else "")
            if not callee_name:
                continue
            callee_cls = ""
            receiver_words = ()
            is_atomic_member = False
            if callee is not None:
                callee_cls = _spelling_chain(callee)
                parent = callee.semantic_parent
                if parent is not None and parent.spelling and \
                        parent.spelling.startswith(_ATOMIC_CLASS_NAMES):
                    is_atomic_member = True
            if callee_name in model.ATOMIC_OPS and is_atomic_member:
                children = list(node.get_children())
                obj = _expr_text(children[0]) if children else ""
                orders = tuple(_order_names_in(node))
                args = list(node.get_arguments())
                func.atomic_ops.append(model.AtomicOp(
                    op=callee_name, obj=obj,
                    words=tuple(w for w in obj.replace("->", ".")
                                .replace("[", ".").replace("]", "")
                                .split(".") if w.isidentifier()),
                    orders=orders, n_args=len(args),
                    line=node.location.line,
                    offset=node.location.offset))
                continue
            if callee_name in ("atomic_thread_fence",
                               "atomic_signal_fence"):
                orders = _order_names_in(node)
                func.fences.append(model.Fence(
                    order=orders[0] if orders else "",
                    line=node.location.line,
                    offset=node.location.offset))
                continue
            func.calls.append(model.Call(
                name=callee_name.split("::")[-1],
                scope=callee_cls, receiver="",
                receiver_type=callee_cls,
                line=node.location.line,
                offset=node.location.offset,
                receiver_words=receiver_words))
        elif kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(node.get_children())
            container = children[-2] if len(children) >= 2 else None
            text = _expr_text(container) if container is not None else ""
            type_spelling = _type_names(
                container.type if container is not None else None)
            is_unordered = any(u in type_spelling
                               for u in _UNORDERED_CLASS_NAMES)
            words = tuple(w for w in text.replace("->", ".").split(".")
                          if w.isidentifier())
            loop = model.RangeLoop(
                container=text or type_spelling,
                words=words,
                line=node.location.line,
                offset=node.location.offset)
            if is_unordered:
                # Make the unordered-ness visible to the rule even when
                # the variable was declared in an unanalyzed header.
                loop.container = (text or "expr") + \
                    f" /*{type_spelling.split('<')[0].split('::')[-1]}*/"
                for w in words:
                    source.unordered_decls.setdefault(
                        w, ("unordered", node.location.line))
            func.range_loops.append(loop)
        elif kind == cindex.CursorKind.VAR_DECL:
            if node.storage_class == cindex.StorageClass.STATIC and \
                    node.semantic_parent == cursor:
                tokens = " ".join(
                    t.spelling for t in node.get_tokens())[:80]
                func.local_statics.append(model.LocalStatic(
                    line=node.location.line,
                    offset=node.location.offset,
                    constinit="constinit" in tokens,
                    text=tokens))
            type_spelling = _type_names(node.type)
            base = type_spelling.split("<")[0].split("::")[-1].strip(" &*")
            if base:
                func.local_types.setdefault(node.spelling, base)
            if "atomic" in type_spelling:
                source.atomic_decls.setdefault(node.spelling,
                                               node.location.line)
            if any(u in type_spelling for u in _UNORDERED_CLASS_NAMES):
                source.unordered_decls.setdefault(
                    node.spelling, ("unordered", node.location.line))
        elif kind == cindex.CursorKind.CXX_NEW_EXPR:
            func.uses_new.append(node.location.line)
    return func


def load_program(root, rel_paths, compdb_path):
    import clang.cindex as cindex

    commands = _load_compile_commands(compdb_path)
    index = cindex.Index.create()
    wanted = {os.path.normpath(os.path.join(root, p)): p
              for p in rel_paths}
    files = {}
    for rel_path in rel_paths:
        with open(os.path.join(root, rel_path), encoding="utf-8") as fh:
            raw = fh.read()
        source = model.SourceFile(rel_path=rel_path,
                                  raw_lines=raw.splitlines())
        _scan_text_facts(raw, source)
        files[rel_path] = source

    parsed = set()
    for abs_path, (directory, args) in sorted(commands.items()):
        rel = wanted.get(os.path.normpath(abs_path))
        if rel is None:
            continue
        cwd = os.getcwd()
        try:
            os.chdir(directory)
            tu = index.parse(abs_path, args=args)
        except Exception:
            continue
        finally:
            os.chdir(cwd)
        parsed.add(rel)
        _lower_tu(cindex, tu, root, wanted, files)

    # Headers and TUs the compilation database does not cover fall back
    # to the micro frontend so the IR stays complete.
    from . import micro_frontend
    for rel_path in rel_paths:
        if rel_path not in parsed and not files[rel_path].functions:
            files[rel_path] = micro_frontend.parse_file(root, rel_path)
    return model.Program(files)


def _scan_text_facts(raw, source):
    """Facts cheaper to read from text even with an AST in hand: the
    protocol directive and signal-handler registrations."""
    from . import micro_frontend as mf
    import cpptext
    code = cpptext.strip_comments_and_strings(raw)
    proto = mf.PROTOCOL_RE.search(raw)
    if proto:
        words = tuple(w.strip() for w in (proto.group(2) or "").split(",")
                      if w.strip())
        source.protocol = model.Protocol(
            kind=proto.group(1), words=words,
            line=raw.count("\n", 0, proto.start()) + 1)
    for pattern in mf.HANDLER_REG_RES:
        for match in pattern.finditer(code):
            name = match.group(1).split("::")[-1]
            if name not in ("SIG_DFL", "SIG_IGN"):
                source.handler_regs.append(
                    (name, code.count("\n", 0, match.start()) + 1))


def _lower_tu(cindex, tu, root, wanted, files):
    for cursor in tu.cursor.walk_preorder():
        if cursor.kind not in (cindex.CursorKind.FUNCTION_DECL,
                               cindex.CursorKind.CXX_METHOD,
                               cindex.CursorKind.CONSTRUCTOR,
                               cindex.CursorKind.DESTRUCTOR):
            continue
        if not cursor.is_definition():
            continue
        location_file = cursor.location.file
        if location_file is None:
            continue
        rel = wanted.get(os.path.normpath(location_file.name))
        if rel is None:
            continue
        source = files[rel]
        if any(f.qual == (_spelling_chain(cursor) + "::" +
                          cursor.spelling.lstrip("~")
                          if _spelling_chain(cursor)
                          else cursor.spelling.lstrip("~")) and
               f.line == cursor.extent.start.line
               for f in source.functions):
            continue  # already lowered from another TU including this header
        func = _lower_function(cindex, cursor, source, root)
        source.functions.append(func)
    # Field declarations (atomic members, unordered members) from class
    # definitions in covered files:
    for cursor in tu.cursor.walk_preorder():
        if cursor.kind != cindex.CursorKind.FIELD_DECL:
            continue
        location_file = cursor.location.file
        if location_file is None:
            continue
        rel = wanted.get(os.path.normpath(location_file.name))
        if rel is None:
            continue
        source = files[rel]
        type_spelling = _type_names(cursor.type)
        if "atomic" in type_spelling:
            source.atomic_decls.setdefault(cursor.spelling,
                                           cursor.location.line)
        if any(u in type_spelling for u in _UNORDERED_CLASS_NAMES):
            source.unordered_decls.setdefault(
                cursor.spelling, ("unordered", cursor.location.line))
