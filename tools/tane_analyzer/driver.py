"""tane-analyzer driver: frontend selection, waivers, baseline, reporting.

Usage:
  tools/tane_analyzer [--root DIR] [--baseline FILE] [--update-baseline]
                      [--frontend auto|clang|micro] [--compdb FILE]
                      [--list]

Semantics mirror tools/tane_lint.py: findings are content-addressed
(`rule:path:normalized-line-text`), known ones live in
tools/analyzer_baseline.json, a `tane-analyzer: allow(<rule>)` comment on
the finding line or up to 3 lines above waives it, and the exit status is
non-zero only for findings absent from the baseline.

Frontends: `clang` lowers the TUs with libclang (clang.cindex) over the
exported compile_commands.json; `micro` is the built-in token-level
reader. `auto` (the default) tries clang and falls back — loudly — to
micro, so the gate runs everywhere and is merely sharper where libclang
exists.
"""

import argparse
import json
import os
import re
import sys
import time

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if TOOLS_DIR not in sys.path:
    sys.path.insert(0, TOOLS_DIR)
import jsonio  # noqa: E402

from . import micro_frontend  # noqa: E402
from . import rule_atomics, rule_determinism, rule_handles, rule_signal  # noqa: E402

RULES = (rule_atomics, rule_signal, rule_determinism, rule_handles)
RULE_NAMES = ("atomics-contract", "signal-safety", "determinism",
              "handle-discipline")

WAIVER_RE = re.compile(r"tane-analyzer:\s*allow\(([a-z-]+)\)")
WAIVER_REACH = 3


class Finding:
    def __init__(self, rule, path, line_number, line_text, message):
        self.rule = rule
        self.path = path
        self.line_number = line_number
        self.message = message
        normalized = " ".join(line_text.split())
        self.identity = f"{rule}:{path}:{normalized}"

    def __str__(self):
        return (f"{self.path}:{self.line_number}: [{self.rule}] "
                f"{self.message}")


def _waived(rule, raw_lines, line_number):
    lo = max(0, line_number - 1 - WAIVER_REACH)
    for line in raw_lines[lo:line_number]:
        match = WAIVER_RE.search(line)
        if match and match.group(1) == rule:
            return True
    return False


def discover_files(root):
    files = []
    src = os.path.join(root, "src")
    for directory, _, names in sorted(os.walk(src)):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                files.append(
                    os.path.relpath(os.path.join(directory, name), root))
    return files


def _load_clang_frontend(root, compdb, notes):
    """Returns a load_program(root, rel_paths) callable or None."""
    try:
        from . import clang_frontend
    except Exception as error:  # pragma: no cover - import-time only
        notes.append(f"clang frontend unavailable: {error}")
        return None
    problem = clang_frontend.probe(root, compdb)
    if problem is not None:
        notes.append(f"clang frontend unavailable: {problem}")
        return None

    def load(load_root, rel_paths):
        return clang_frontend.load_program(load_root, rel_paths, compdb)

    return load


def analyze_tree(root, frontend="micro", compdb=None, notes=None):
    """Run all rules over `root`. Returns (findings, stats) where stats is
    {rule: count} plus {"files": N, "frontend": name}. Waivers are already
    applied; baseline is the caller's business."""
    if notes is None:
        notes = []
    rel_paths = discover_files(root)

    loader = None
    chosen = "micro"
    if frontend in ("auto", "clang"):
        loader = _load_clang_frontend(root, compdb, notes)
        if loader is not None:
            chosen = "clang"
        elif frontend == "clang":
            raise RuntimeError("; ".join(notes) or
                               "clang frontend unavailable")
    if loader is None:
        loader = micro_frontend.load_program

    program = loader(root, rel_paths)

    findings = []

    def emit(rule, source, line_number, message):
        raw_lines = source.raw_lines
        if line_number < 1 or line_number > len(raw_lines):
            line_text = ""
            line_number = max(1, min(line_number, len(raw_lines) or 1))
        else:
            line_text = raw_lines[line_number - 1]
        if _waived(rule, raw_lines, line_number):
            return
        findings.append(Finding(rule, source.rel_path, line_number,
                                line_text, message))

    for rule_module in RULES:
        rule_module.run(program, emit)

    stats = {name: 0 for name in RULE_NAMES}
    for finding in findings:
        stats[finding.rule] = stats.get(finding.rule, 0) + 1
    stats["files"] = len(rel_paths)
    stats["frontend"] = chosen
    return findings, stats


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: "
                             "tools/analyzer_baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept the current findings as the baseline")
    parser.add_argument("--frontend", choices=("auto", "clang", "micro"),
                        default="auto")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json for the clang frontend "
                             "(default: <root>/build/compile_commands.json)")
    parser.add_argument("--list", action="store_true",
                        help="print every finding, baselined or not")
    args = parser.parse_args(argv[1:])

    root = (os.path.abspath(args.root) if args.root
            else os.path.dirname(TOOLS_DIR))
    baseline_path = args.baseline or os.path.join(
        TOOLS_DIR, "analyzer_baseline.json")
    compdb = args.compdb or os.path.join(root, "build",
                                         "compile_commands.json")
    started = time.monotonic()

    notes = []
    try:
        findings, stats = analyze_tree(root, frontend=args.frontend,
                                       compdb=compdb, notes=notes)
    except RuntimeError as error:
        print(f"tane-analyzer: FAIL: {error}", file=sys.stderr)
        return 1
    for note in notes:
        print(f"tane-analyzer: note: {note}")

    def fail(message):
        print(f"tane-analyzer: FAIL: {message}", file=sys.stderr)
        sys.exit(1)

    if args.update_baseline:
        document = {"comment":
                    "Accepted tane-analyzer findings; regenerate with "
                    "tools/tane_analyzer --update-baseline.",
                    "tool": "tane-analyzer",
                    "findings": sorted(f.identity for f in findings)}
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"tane-analyzer: baseline updated with {len(findings)} "
              "findings")
        return 0

    baseline = set()
    if os.path.exists(baseline_path):
        document = jsonio.load_json(baseline_path, fail)
        if not isinstance(document.get("findings"), list):
            fail(f"{baseline_path}: missing 'findings' array")
        baseline = set(document["findings"])

    new = [f for f in findings if f.identity not in baseline]
    stale = baseline - {f.identity for f in findings}
    shown = findings if args.list else new
    for finding in shown:
        print(finding, file=sys.stderr)

    elapsed = time.monotonic() - started
    print(f"tane-analyzer: frontend={stats['frontend']}")
    for name in RULE_NAMES:
        print(f"tane-analyzer: {name:<17} {stats.get(name, 0)} findings")
    print(f"tane-analyzer: {stats['files']} files, {len(findings)} "
          f"findings ({len(findings) - len(new)} baselined, {len(new)} "
          f"new, {len(stale)} baseline entries now fixed) "
          f"in {elapsed:.2f}s")
    if stale:
        print("tane-analyzer: note: run --update-baseline to drop fixed "
              "entries", file=sys.stderr)
    if new:
        print("tane-analyzer: FAIL: new findings above; fix them, waive "
              "with `tane-analyzer: allow(<rule>)`, or --update-baseline",
              file=sys.stderr)
        return 1
    return 0
