"""atomics-contract: explicit memory_order everywhere, plus per-file
lock-free protocol contracts declared with `// tane-atomics: <protocol>`.

Base checks (every file):
  * every std::atomic load/store/RMW names its memory_order — a silent
    seq_cst is either a missed relaxation on a hot path or, worse, a spot
    where the author never decided what ordering the algorithm needs;
  * compare_exchange names both the success AND the failure order — the
    single-order overload derives the failure order silently (acq_rel
    degrades to acquire, release to relaxed), which readers routinely get
    wrong;
  * no operator-form atomic accesses (`x++`, `x = v`): they are seq_cst by
    definition and invisible to a memory-order audit.

Protocol checks (declared files — see DESIGN.md §16 for the invariants):
  seqlock(seq_words...)
      Writers: every write to the sequence word is release-or-stronger,
      and the FIRST bump in a function with two or more bumps (the
      begin-bump that makes the sequence odd) must be acq_rel/seq_cst — a
      release RMW does not stop the payload stores that follow it in
      program order from being reordered ahead of it on weak hardware.
      Readers (functions that load the sequence word, then payload
      atomics, and never write the sequence word): first sequence read is
      acquire-or-stronger, a second read exists, and an acquire fence sits
      between the payload loads and the re-read (a load-acquire re-read
      does NOT order the earlier payload loads; only the fence does).
  chase-lev(words...)
      Every op on the named deque words stays seq_cst: this repo
      deliberately runs the seq_cst Chase–Lev variant so TSan can verify
      it natively. Quiescent paths (ctor/reset/teardown) may relax with a
      waiver carrying that rationale.
  single-writer(published_words...)
      Stores may be relaxed (one writer, no self-races), but cross-thread
      readers of the named published words — loads in functions that never
      store any atomic — must acquire. Files may declare the protocol with
      no words when every cell is an independent monotonic value that
      readers only aggregate.
  spsc-ring(words...)
      Stores to the named index words are release-or-stronger; loads of a
      word in functions that do not also store it (the other role's side)
      are acquire-or-stronger.
"""

from . import model

RULE = "atomics-contract"

PROTOCOLS = ("seqlock", "spsc-ring", "chase-lev", "single-writer")


def _is_atomic(program, source, op):
    """An op is atomic if any identifier in its receiver is a name declared
    std::atomic anywhere in the tree, or a declared protocol word."""
    if not op.words:
        return False
    words = set(op.words)
    if words & program.atomic_names:
        return True
    if source.protocol and words & set(source.protocol.words):
        return True
    return False


def _required_orders(op):
    return model.ATOMIC_OPS.get(op.op, 1)


def _base_checks(program, source, emit):
    for func, op in source.all_atomic_ops():
        if not _is_atomic(program, source, op):
            continue
        need = _required_orders(op)
        have = op.explicit_orders
        if need == 0 or have >= need:
            continue
        if op.op in ("compare_exchange_strong", "compare_exchange_weak"):
            if have == 1:
                emit(RULE, source, op.line,
                     f"compare_exchange on `{op.obj}` names only the "
                     "success order; the derived failure order is silent "
                     "(acq_rel degrades to acquire) — spell both orders")
                continue
        emit(RULE, source, op.line,
             f"atomic {op.op} on `{op.obj}` defaults to seq_cst; name the "
             "memory_order explicitly (seq_cst included, if that is the "
             "contract)")


def _touches(op, words):
    return bool(set(op.words) & set(words))


def _check_seqlock(source, emit):
    words = source.protocol.words
    if not words:
        emit(RULE, source, source.protocol.line,
             "seqlock protocol header names no sequence word; declare it "
             "as `// tane-atomics: seqlock(<word>)`")
        return
    for func in source.functions:
        seq_writes = [op for op in func.atomic_ops
                      if _touches(op, words) and op.op != "load"]
        seq_loads = [op for op in func.atomic_ops
                     if _touches(op, words) and op.op == "load"]
        if seq_writes:
            for i, op in enumerate(seq_writes):
                orders = set(op.orders)
                if i == 0 and len(seq_writes) >= 2:
                    # The begin-bump: must keep later payload stores from
                    # floating above it.
                    if orders and not orders & {"acq_rel", "seq_cst"}:
                        emit(RULE, source, op.line,
                             f"seqlock begin-bump on `{op.obj}` is "
                             f"{'/'.join(sorted(orders))}; it must be "
                             "acq_rel or seq_cst — a release bump does not "
                             "stop the payload stores after it from being "
                             "reordered ahead on weakly-ordered hardware")
                elif orders and not orders & model.RELEASE_OR_STRONGER:
                    emit(RULE, source, op.line,
                         f"seqlock sequence-word write on `{op.obj}` must "
                         "be release or stronger so the payload written "
                         "before it is published with it")
            continue
        if not seq_loads:
            continue
        first_load = min(seq_loads, key=lambda op: op.offset)
        payload_loads = [op for op in func.atomic_ops
                         if not _touches(op, words) and op.op == "load"
                         and op.offset > first_load.offset]
        if not payload_loads:
            continue
        if len(seq_loads) < 2:
            emit(RULE, source, first_load.line,
                 f"seqlock reader loads `{first_load.obj}` only once; "
                 "re-read the sequence word after the payload loads (and "
                 "retry on mismatch) or a torn read goes undetected")
            continue
        if set(first_load.orders) and \
                not set(first_load.orders) & model.ACQUIRE_OR_STRONGER:
            emit(RULE, source, first_load.line,
                 f"first seqlock read of `{first_load.obj}` must be "
                 "acquire or stronger so the payload loads cannot start "
                 "before it")
        last_load = max(seq_loads, key=lambda op: op.offset)
        last_payload = max(payload_loads, key=lambda op: op.offset)
        if last_payload.offset < last_load.offset:
            fence_between = any(
                f.order in model.ACQUIRE_OR_STRONGER
                for f in func.fences
                if last_payload.offset < f.offset < last_load.offset)
            payload_all_acquire = all(
                set(op.orders) & model.ACQUIRE_OR_STRONGER
                for op in payload_loads if op.orders)
            if not fence_between and not (
                    payload_loads and payload_all_acquire and
                    all(op.orders for op in payload_loads)):
                emit(RULE, source, last_load.line,
                     "seqlock re-read needs "
                     "std::atomic_thread_fence(memory_order_acquire) "
                     "between the payload loads and the sequence re-read; "
                     "an acquire on the re-read itself does not order the "
                     "loads that precede it")


def _check_chase_lev(source, emit):
    words = source.protocol.words
    for func, op in source.all_atomic_ops():
        if not _touches(op, words):
            continue
        orders = set(op.orders)
        if orders and orders != {"seq_cst"}:
            emit(RULE, source, op.line,
                 f"chase-lev op on `{op.obj}` uses "
                 f"{'/'.join(sorted(orders))}; the deque stays seq_cst so "
                 "TSan verifies it natively (DESIGN.md §16) — waive "
                 "quiescent paths with the single-threaded rationale")


def _check_single_writer(source, emit):
    words = source.protocol.words
    if not words:
        return  # value-only counter file: base checks are the contract
    for func in source.functions:
        stores_any = any(op.op != "load" for op in func.atomic_ops)
        if stores_any:
            continue  # the writer side may do as it pleases (one thread)
        for op in func.atomic_ops:
            if op.op != "load" or not _touches(op, words):
                continue
            orders = set(op.orders)
            if orders and not orders & model.ACQUIRE_OR_STRONGER:
                emit(RULE, source, op.line,
                     f"cross-thread read of single-writer word `{op.obj}` "
                     "must be acquire or stronger: the reader needs the "
                     "writes that preceded the publication, not just the "
                     "word itself")


def _check_spsc_ring(source, emit):
    words = source.protocol.words
    if not words:
        emit(RULE, source, source.protocol.line,
             "spsc-ring protocol header names no index words; declare "
             "them as `// tane-atomics: spsc-ring(head,tail)`")
        return
    for func in source.functions:
        stored_here = {w for op in func.atomic_ops if op.op != "load"
                       for w in op.words if w in words}
        for op in func.atomic_ops:
            if not _touches(op, words):
                continue
            orders = set(op.orders)
            if not orders:
                continue  # base check already demanded an explicit order
            if op.op != "load":
                if not orders & model.RELEASE_OR_STRONGER:
                    emit(RULE, source, op.line,
                         f"spsc-ring index store on `{op.obj}` must be "
                         "release or stronger to publish the slots "
                         "written before it")
            else:
                touched = set(op.words) & set(words)
                if not touched & stored_here and \
                        not orders & model.ACQUIRE_OR_STRONGER:
                    emit(RULE, source, op.line,
                         f"spsc-ring read of the other side's index "
                         f"`{op.obj}` must be acquire or stronger; only "
                         "the owner of a word may re-read it relaxed")


def _check_operator_forms(source, emit):
    """Operator-form atomic accesses (`x++`, `x += v`, `x = v`), collected
    class-aware by the frontend."""
    for op in source.implicit_atomic_ops:
        emit(RULE, source, op.line,
             f"operator-form atomic access `{op.obj} "
             f"{op.op.replace('operator', '')}` is seq_cst by definition; "
             "use explicit .store/.load/.fetch_* with a named order")


def run(program, emit):
    for source in program.files.values():
        _base_checks(program, source, emit)
        _check_operator_forms(source, emit)
        if source.protocol is None:
            continue
        kind = source.protocol.kind
        if kind == "seqlock":
            _check_seqlock(source, emit)
        elif kind == "chase-lev":
            _check_chase_lev(source, emit)
        elif kind == "single-writer":
            _check_single_writer(source, emit)
        elif kind == "spsc-ring":
            _check_spsc_ring(source, emit)
        else:
            emit(RULE, source, source.protocol.line,
                 f"unknown tane-atomics protocol `{kind}`; expected one "
                 f"of {', '.join(PROTOCOLS)}")
