"""Shared C++ text utilities for the tools/ linters and analyzers.

`tane_lint.py` (regex tier) and `tane_analyzer/` (semantic tier) both need
comment/string-aware views of a translation unit.  The routines here are
deliberately dumb — a character state machine, not a preprocessor — but they
are the single source of truth for both tools, so a fixed stripper bug fixes
every rule at once.
"""


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line breaks
    (and character offsets: the output is exactly as long as the input, so
    positions computed on the stripped text index into the original).
    Waiver comments are read from the original text by callers."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif (state == "string" and c == '"') or \
                 (state == "char" and c == "'"):
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of_offset(text, offset):
    """1-based line number of a character offset."""
    return text.count("\n", 0, offset) + 1


def matching_paren(text, open_index):
    """Offset of the `)` matching the `(` at open_index, or -1 if the text
    runs out first. Assumes comment/string-stripped input."""
    depth = 0
    for i in range(open_index, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_top_level_args(argtext):
    """Split an argument list on commas that sit at paren/bracket/brace depth
    zero. `argtext` is the text between the outer parens (stripped input).
    Angle brackets are deliberately not tracked: `->` and comparison
    operators would unbalance them, and memory_order argument lists never
    carry commas inside template arguments."""
    args = []
    depth = 0
    current = []
    for c in argtext:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(c)
    tail = "".join(current).strip()
    if tail or args:
        args.append(tail)
    return [a for a in args if a]
