#!/usr/bin/env bash
# Builds and tests every supported configuration: the default RelWithDebInfo
# preset, the asan-ubsan preset (AddressSanitizer + UBSan), and the tsan
# preset (ThreadSanitizer, which races the parallel level executor), running
# the full ctest suite under each. Usage: tools/check.sh [preset ...]; with
# no arguments all three presets run.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
  echo "==> configure: ${preset}"
  cmake --preset "${preset}"
  echo "==> build: ${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> test: ${preset}"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "All presets green: ${presets[*]}"
