#!/usr/bin/env bash
# Builds and tests every supported configuration: the default RelWithDebInfo
# preset, the asan-ubsan preset (AddressSanitizer + UBSan), and the tsan
# preset (ThreadSanitizer, which races the parallel level executor), running
# the full ctest suite under each. The suite includes the kernel-equivalence
# fuzz tests, which sweep every available dispatch kernel (scalar, and
# avx2/neon where the CPU has them) — so each kernel's gathers, prefetches,
# and scatters run under both sanitizers on every invocation. Usage:
# tools/check.sh [preset ...]; with no arguments all three presets run.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

# Static analysis gates, cheapest failures first: the regex-tier project
# lint (plus clang-tidy and the Clang thread-safety `analysis` preset,
# which self-skip when the tools are absent), then the semantic tier —
# tools/tane_analyzer's lock-free protocol, signal-safety, determinism,
# and handle-discipline contracts. The analyzer runs as its own step so
# its per-rule counts and runtime land in the check log; lint.sh is told
# to skip its copy.
echo "==> lint: tools/lint.sh"
tools/lint.sh --skip-analyzer
echo "==> analyze: tools/tane_analyzer (semantic contracts)"
python3 tools/tane_analyzer

for preset in "${presets[@]}"; do
  echo "==> configure: ${preset}"
  cmake --preset "${preset}"
  echo "==> build: ${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> test: ${preset}"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "All presets green: ${presets[*]}"

# Perf smoke: build the release preset's partition microbenchmark, run the
# JSON measurement once, and check the artifact is valid JSON. Catches both
# a broken release build and a malformed BENCH_micro_partition.json early.
# The same artifact carries the baseline-vs-instrumented measurement, so
# the obs checker also asserts instrumentation overhead stays within 2% —
# and holds products/sec to the hard per-dataset throughput floors in
# check_obs.py (1.5x the pre-kernel-rewrite baseline), so a regression in
# the product hot path fails the gate outright.
echo "==> perf smoke: release micro_partition"
cmake --preset release
cmake --build --preset release -j "${jobs}" --target micro_partition
smoke_json="build-release/BENCH_micro_partition.json"
build-release/bench/micro_partition \
  --benchmark_filter='^$' --json="${smoke_json}"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${smoke_json}" >/dev/null
  python3 tools/check_obs.py micro "${smoke_json}"
else
  # No python3: settle for the file being non-empty.
  [ -s "${smoke_json}" ]
fi
echo "perf smoke OK: ${smoke_json}"

# Scaling gate: run the thread-scaling sweep at quick scale and hard-fail
# on regressions — any thread count whose output differs from serial, any
# allocation-count drift, and (on machines with the cores to measure it)
# speedups below the floors in check_obs.py. On single-core CI boxes the
# floors self-skip but the determinism and allocation checks still bind.
echo "==> scaling gate: release parallel_scaling"
cmake --build --preset release -j "${jobs}" --target parallel_scaling
scaling_json="build-release/BENCH_parallel_scaling.json"
build-release/bench/parallel_scaling --scale=quick --json="${scaling_json}"
if command -v python3 >/dev/null 2>&1; then
  python3 tools/check_obs.py scaling "${scaling_json}"
else
  [ -s "${scaling_json}" ]
fi
echo "scaling gate OK: ${scaling_json}"

# Observability smoke: one release discovery with tracing, progress, and the
# run report enabled; the checker validates the trace is loadable trace-event
# JSON and that the report's counters and per-level table agree with the
# --stats output of the same run.
echo "==> obs smoke: release discover with --trace/--report/--progress"
cmake --build --preset release -j "${jobs}" --target tane_cli
obs_dir="build-release/obs-smoke"
mkdir -p "${obs_dir}"
build-release/tools/tane generate hepatitis --rows=3000 \
  > "${obs_dir}/hepatitis.csv"
build-release/tools/tane discover "${obs_dir}/hepatitis.csv" \
  --threads=2 --epsilon=0.05 --max-lhs=4 --stats --progress=1 \
  --trace="${obs_dir}/trace.json" --report="${obs_dir}/report.json" \
  > "${obs_dir}/discover.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 tools/check_obs.py trace "${obs_dir}/trace.json"
  python3 tools/check_obs.py report "${obs_dir}/report.json" \
    "${obs_dir}/discover.txt"
else
  [ -s "${obs_dir}/trace.json" ] && [ -s "${obs_dir}/report.json" ]
fi
echo "obs smoke OK: ${obs_dir}"

# Profiler overhead gate: the same discovery twice without and twice with
# the 97 Hz sampler; check_obs.py validates the folded-stack artifact and
# holds min-profiled/min-baseline to the 1.05x budget.
echo "==> profile gate: release discover with --profile"
base_flags=(--threads=2 --epsilon=0.05 --max-lhs=4 --stats)
for i in 1 2; do
  build-release/tools/tane discover "${obs_dir}/hepatitis.csv" \
    "${base_flags[@]}" > "${obs_dir}/base${i}.txt"
  build-release/tools/tane discover "${obs_dir}/hepatitis.csv" \
    "${base_flags[@]}" --profile \
    --profile-out="${obs_dir}/profile${i}.folded" > "${obs_dir}/prof${i}.txt"
done
if command -v python3 >/dev/null 2>&1; then
  python3 tools/check_obs.py profile "${obs_dir}/profile1.folded" \
    --base "${obs_dir}/base1.txt" "${obs_dir}/base2.txt" \
    --prof "${obs_dir}/prof1.txt" "${obs_dir}/prof2.txt"
else
  [ -s "${obs_dir}/profile1.folded" ]
fi
echo "profile gate OK: ${obs_dir}/profile1.folded"

# Report drift (soft gate): a second identical instrumented run must agree
# with the first — deterministic fields exactly, measurements within the
# band. A nonzero exit here warns instead of failing: wall-clock bands on
# a loaded box are judgement, not law.
echo "==> insight diff (soft): back-to-back run reports"
build-release/tools/tane discover "${obs_dir}/hepatitis.csv" \
  --threads=2 --epsilon=0.05 --max-lhs=4 --stats --progress=1 \
  --trace="${obs_dir}/trace2.json" --report="${obs_dir}/report2.json" \
  > "${obs_dir}/discover2.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 tools/tane_insight.py diff \
    "${obs_dir}/report.json" "${obs_dir}/report2.json" \
    || echo "WARNING: run reports drifted (soft gate, not failing)"
fi

# Checkpoint chaos smoke: SIGKILL a discovery run at every checkpoint-I/O
# failpoint, resume, and require byte-identical output — under the
# sanitizer build when it was part of this invocation, so torn-write
# recovery runs with ASan/UBSan watching.
chaos_bin="build/tools/tane"
for preset in "${presets[@]}"; do
  if [ "${preset}" = "asan-ubsan" ]; then
    chaos_bin="build-asan-ubsan/tools/tane"
  fi
done
echo "==> chaos smoke: kill-and-resume via ${chaos_bin}"
tools/chaos_checkpoint.sh "${chaos_bin}" "$(mktemp -d)"
