// The `tane` command-line tool. See tools/cli.h for the command set, or run
// `tane help`.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return tane::cli::Run(args, std::cout, std::cerr);
}
