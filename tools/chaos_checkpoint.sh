#!/usr/bin/env bash
# Kill-and-resume chaos smoke for the checkpoint subsystem.
#
# Runs the given `tane` binary against a generated dataset with
# checkpointing on, SIGKILLs it at each checkpoint-I/O failpoint (first and
# second occurrence) via TANE_FAILPOINT_KILL, then reruns with --resume and
# asserts the final --format=json output is byte-identical to an
# uninterrupted run. This is the ctest chaos harness's scenario, but driven
# against a sanitizer build's real binary from CI.
#
# Usage: tools/chaos_checkpoint.sh <tane-binary> [workdir]
set -euo pipefail

bin="$1"
work="${2:-$(mktemp -d /tmp/tane_chaos.XXXXXX)}"
mkdir -p "${work}"

"${bin}" generate lymphography --rows=300 > "${work}/data.csv"
"${bin}" discover "${work}/data.csv" --format=json > "${work}/full.json"

sites=(checkpoint.write_temp checkpoint.fsync checkpoint.rename
       checkpoint.dir_fsync checkpoint.unlink_old)
kills=0
runs=0
for site in "${sites[@]}"; do
  for skip in 0 1; do
    ckpt="${work}/ckpt_${site}_${skip}"
    rm -rf "${ckpt}"
    runs=$((runs + 1))
    set +e
    TANE_FAILPOINT_KILL="${site}:${skip}" \
      "${bin}" discover "${work}/data.csv" --format=json \
      --checkpoint-dir="${ckpt}" --checkpoint-every-level \
      > /dev/null 2>&1
    status=$?
    set -e
    if [ "${status}" -eq 137 ]; then
      # Killed by SIGKILL mid-checkpoint; the resume (which may find no
      # snapshot at all if the very first publish died — then it starts
      # fresh) must still reproduce the uninterrupted output exactly.
      kills=$((kills + 1))
      "${bin}" discover "${work}/data.csv" --format=json \
        --checkpoint-dir="${ckpt}" --resume \
        > "${work}/resumed.json" 2> /dev/null
      if ! cmp -s "${work}/full.json" "${work}/resumed.json"; then
        echo "chaos_checkpoint: FAIL: resume after SIGKILL at" \
             "${site}:${skip} diverged from the uninterrupted run" >&2
        exit 1
      fi
    elif [ "${status}" -ne 0 ]; then
      echo "chaos_checkpoint: FAIL: unexpected exit ${status} at" \
           "${site}:${skip}" >&2
      exit 1
    fi
    rm -rf "${ckpt}"
  done
done

if [ "${kills}" -eq 0 ]; then
  echo "chaos_checkpoint: FAIL: no failpoint ever fired (${runs} runs);" \
       "is TANE_ENABLE_FAILPOINTS off in this build?" >&2
  exit 1
fi

# A truncated snapshot must be detected by its CRC and rejected with the
# resumable exit code (10), never parsed into a bogus resume.
ckpt="${work}/ckpt_truncated"
rm -rf "${ckpt}"
"${bin}" discover "${work}/data.csv" --checkpoint-dir="${ckpt}" \
  --stop-after-level=2 > /dev/null 2>&1 || [ $? -eq 10 ]
snapshot=$(ls "${ckpt}"/level-*.ckpt)
size=$(wc -c < "${snapshot}")
truncate -s $((size / 2)) "${snapshot}"
set +e
"${bin}" discover "${work}/data.csv" --format=json \
  --checkpoint-dir="${ckpt}" --resume > /dev/null 2>&1
status=$?
set -e
if [ "${status}" -ne 10 ]; then
  echo "chaos_checkpoint: FAIL: truncated snapshot exited ${status}," \
       "want 10" >&2
  exit 1
fi

# Flight-recorder postmortems: every early-exit class must leave a valid
# flightrec.json next to the checkpoints — deadline expiry and memory-
# budget breach through the graceful path, SIGTERM through the async-
# signal-safe path. SIGKILL itself is uncatchable by design; SIGTERM is
# its closest observable stand-in.
flightrec_assert() {
  local file="$1" want_reason="$2"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${file}" "${want_reason}" <<'EOF'
import json, sys
path, want = sys.argv[1], sys.argv[2]
doc = json.load(open(path))
assert doc["schema_version"] == 1, doc
assert doc["tool"] == "tane-flightrec", doc
assert doc["reason"] == want, (doc["reason"], want)
assert isinstance(doc["events"], list) and doc["events"], "no events"
for event in doc["events"]:
    for key in ("seq", "t_us", "tid", "type", "label", "a", "b"):
        assert key in event, (key, event)
if want == "signal":
    assert doc["signal"] == 15, doc["signal"]
EOF
  else
    [ -s "${file}" ]
  fi
}

"${bin}" generate lymphography --rows=5000 > "${work}/slow.csv"

ckpt="${work}/ckpt_deadline"
rm -rf "${ckpt}"
set +e
"${bin}" discover "${work}/slow.csv" --deadline-ms=200 \
  --checkpoint-dir="${ckpt}" > /dev/null 2>&1
status=$?
set -e
if [ "${status}" -ne 0 ] && [ "${status}" -ne 10 ]; then
  echo "chaos_checkpoint: FAIL: deadline run exited ${status}" >&2
  exit 1
fi
flightrec_assert "${ckpt}/flightrec.json" deadline || {
  echo "chaos_checkpoint: FAIL: invalid flightrec after deadline" >&2
  exit 1
}

ckpt="${work}/ckpt_budget"
rm -rf "${ckpt}"
set +e
"${bin}" discover "${work}/slow.csv" --memory-budget-mb=8 \
  --storage=memory --checkpoint-dir="${ckpt}" > /dev/null 2>&1
status=$?
set -e
if [ "${status}" -ne 7 ] && [ "${status}" -ne 10 ]; then
  echo "chaos_checkpoint: FAIL: budget run exited ${status}, want 7/10" >&2
  exit 1
fi
flightrec_assert "${ckpt}/flightrec.json" memory_budget || {
  echo "chaos_checkpoint: FAIL: invalid flightrec after budget breach" >&2
  exit 1
}

ckpt="${work}/ckpt_sigterm"
rm -rf "${ckpt}"
set +e
"${bin}" discover "${work}/slow.csv" --checkpoint-dir="${ckpt}" \
  > /dev/null 2>&1 &
victim=$!
sleep 0.3
kill -TERM "${victim}" 2>/dev/null
wait "${victim}"
status=$?
set -e
if [ "${status}" -ne 143 ] && [ "${status}" -ne 0 ]; then
  echo "chaos_checkpoint: FAIL: SIGTERM run exited ${status}" >&2
  exit 1
fi
if [ "${status}" -eq 143 ]; then
  flightrec_assert "${ckpt}/flightrec.json" signal || {
    echo "chaos_checkpoint: FAIL: invalid flightrec after SIGTERM" >&2
    exit 1
  }
fi

echo "chaos_checkpoint OK: ${kills} SIGKILLs across ${runs} runs," \
     "every resume byte-identical; flight recorder dumped on deadline," \
     "budget breach, and SIGTERM"
