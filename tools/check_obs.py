#!/usr/bin/env python3
"""Validators for the observability artifacts, used by tools/check.sh.

Usage:
  check_obs.py micro   BENCH_micro_partition.json
  check_obs.py trace   trace.json
  check_obs.py report  report.json discover_stats.txt
  check_obs.py scaling BENCH_parallel_scaling.json
  check_obs.py profile folded.txt --base STATS... --prof STATS...

`micro` asserts the instrumentation overhead measured by the partition
microbenchmark stays within the 2% budget, that the registry metrics made
it into the artifact, that the artifact names the dispatched kernel, and
that products/sec clears a hard per-dataset throughput floor (1.5x the
pre-kernel-rewrite baseline) — a genuine perf regression in the product
hot path fails the gate, it does not merely shift a number. `trace` checks the file is structurally valid
Chrome trace-event JSON (loadable by chrome://tracing and Perfetto) and
names every expected phase span. `report` checks the run-report schema and
that its counters and per-level table agree with what `tane discover
--stats` printed for the same run. `scaling` hard-fails on thread-scaling
regressions in the parallel_scaling artifact: every run must match the
serial output bit for bit, allocation counts must not drift with the thread
count, and — on machines whose hardware_concurrency covers the thread count
— speedups must clear the regression floors below. `profile` gates the
sampling profiler: the folded-stack artifact must be structurally valid
(semicolon-joined frames rooted at "tane", integer sample counts) and
carry real samples, and the profiled run's discover time may not exceed
the unprofiled baseline by more than 5% (min-of-N on both sides so one
noisy run does not flap the gate).
"""

import re
import sys

import jsonio

OVERHEAD_BUDGET = 1.02

# The sampling profiler's budget at its default 97 Hz: spans push/pop a
# seqlock-protected frame and the sampler reads them from another thread,
# all off the per-product hot path — 5% is generous, not tight.
PROFILE_OVERHEAD_BUDGET = 1.05

HW_BACKENDS = ("noop", "linux_perf")

HW_PHASE_KEYS = ("phase", "spans", "cycles", "instructions",
                 "cache_references", "cache_misses", "branch_misses", "ipc")

# Hard products/sec floors: 1.5x the baseline committed in
# BENCH_micro_partition.json before the vectorized-kernel rewrite
# (84212 / 74709 / 55472), which that rewrite must beat. "Hepatitis x20"
# is new with the rewrite (no prior baseline), so its floor is its first
# measured artifact (~5500/s) with ~25% noise headroom.
PRODUCTS_PER_SEC_FLOORS = {
    "Lymphography": 126318.0,
    "Hepatitis": 112064.0,
    "Wisconsin breast cancer": 83207.0,
    "Hepatitis x20": 4200.0,
}

KNOWN_KERNELS = ("scalar", "avx2", "neon")

# Spans the discovery driver always emits (per-worker "slice" and "spill"
# are conditional on threading / storage, so not required here).
REQUIRED_SPANS = ("run", "level", "base-partitions", "validity", "prune",
                  "generate", "products")

# --stats token -> (report object path). Every one of these must match the
# report exactly: the stats line and the report are two views of the same
# registry snapshot.
STATS_TOKENS = {
    "levels": ("result", "levels_processed"),
    "sets": ("metrics", "counters", "sets_generated"),
    "validity_tests": ("metrics", "counters", "validity_tests"),
    "products": ("metrics", "counters", "partition_products"),
    "g3_scans": ("metrics", "counters", "g3_scans"),
    "g3_scans_skipped": ("metrics", "counters", "g3_scans_skipped"),
    "product_allocations": ("metrics", "counters", "product_allocations"),
    "pli_cache_lookups": ("metrics", "counters", "pli_cache_lookups"),
    "pli_cache_hits": ("metrics", "counters", "pli_cache_hits"),
    "pli_cache_misses": ("metrics", "counters", "pli_cache_misses"),
    "pli_cache_bytes_saved": ("metrics", "gauges", "pli_cache_bytes_saved"),
    "peak_partition_bytes": ("metrics", "gauges", "peak_resident_bytes"),
    "checkpoint_writes": ("checkpoint", "writes"),
    "checkpoint_bytes": ("checkpoint", "bytes"),
    "resumed_from_level": ("checkpoint", "resumed_from_level"),
    "threads": ("config", "num_threads"),
}


def fail(message):
    print(f"check_obs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    return jsonio.load_json(path, fail)


def dig(doc, path):
    for key in path:
        if not isinstance(doc, dict) or key not in doc:
            fail(f"report is missing {'.'.join(path)}")
        doc = doc[key]
    return doc


def close(a, b, rel=1e-3, abs_tol=1e-9):
    return abs(a - b) <= max(abs_tol, rel * max(abs(a), abs(b)))


def check_micro(path):
    doc = load(path)
    if doc.get("benchmark") != "micro_partition":
        fail(f"{path}: not a micro_partition artifact")
    if doc.get("kernel") not in KNOWN_KERNELS:
        fail(f"{path}: dispatched kernel {doc.get('kernel')!r} is not one "
             f"of {KNOWN_KERNELS}")
    datasets = doc.get("datasets")
    if not datasets:
        fail(f"{path}: empty datasets array")
    worst = 0.0
    floors_checked = 0
    names = set()
    for dataset in datasets:
        name = dataset.get("name", "?")
        names.add(name)
        ratio = dataset.get("obs_overhead_ratio")
        if ratio is None:
            fail(f"{name}: missing obs_overhead_ratio")
        worst = max(worst, ratio)
        if ratio > OVERHEAD_BUDGET:
            fail(f"{name}: instrumentation overhead {ratio:.4f}x exceeds "
                 f"the {OVERHEAD_BUDGET:.2f}x budget")
        if dataset.get("kernel") != doc["kernel"]:
            fail(f"{name}: dataset kernel {dataset.get('kernel')!r} "
                 f"disagrees with the artifact's {doc['kernel']!r}")
        # The honest rows/sec denominator: member rows actually walked.
        if dataset.get("rows_scanned", 0) <= 0:
            fail(f"{name}: rows_scanned missing or zero")
        for key in ("rows_per_sec", "nominal_rows_per_sec"):
            if not isinstance(dataset.get(key), (int, float)):
                fail(f"{name}: missing {key}")
        floor = PRODUCTS_PER_SEC_FLOORS.get(name)
        if floor is not None:
            floors_checked += 1
            throughput = dataset.get("products_per_sec", 0.0)
            if throughput < floor:
                fail(f"{name}: {throughput:.0f} products/sec is below the "
                     f"{floor:.0f}/sec hard floor — the product hot path "
                     f"regressed")
        # partition_products is the driver's counter; the microbenchmark's
        # registry sees the product/pool side: buffer acquires and the
        # per-product size histograms.
        counters = dataset.get("metrics", {}).get("counters", {})
        if counters.get("pool_acquires", 0) <= 0:
            fail(f"{name}: registry recorded no pool acquires")
        classes = dataset.get("histograms", {}).get("product_classes", {})
        if classes.get("count", 0) <= 0:
            fail(f"{name}: product_classes histogram is empty")
    missing = sorted(set(PRODUCTS_PER_SEC_FLOORS) - names)
    if missing:
        fail(f"{path}: floor-gated datasets missing from the artifact: "
             f"{missing}")
    print(f"check_obs: micro OK ({len(datasets)} datasets, "
          f"{floors_checked} throughput floors, "
          f"worst overhead {worst:.4f}x)")


def check_trace(path):
    doc = load(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty traceEvents")
    names = set()
    for index, event in enumerate(events):
        for key in ("name", "cat", "ph", "pid", "tid", "ts"):
            if key not in event:
                fail(f"event {index}: missing {key}")
        if event["ph"] not in ("X", "i"):
            fail(f"event {index}: unexpected ph {event['ph']!r}")
        if event["ph"] == "X":
            if not isinstance(event.get("dur"), (int, float)):
                fail(f"event {index}: complete event without numeric dur")
            if event["dur"] < 0:
                fail(f"event {index}: negative duration")
        else:
            if event.get("s") != "t":
                fail(f"event {index}: instant event without scope 's':'t'")
        if not isinstance(event["ts"], (int, float)):
            fail(f"event {index}: non-numeric ts")
        names.add(event["name"].split()[0])
    for required in REQUIRED_SPANS:
        if required not in names:
            fail(f"no '{required}' span in trace (have: {sorted(names)})")
    print(f"check_obs: trace OK ({len(events)} events, "
          f"{doc.get('otherData', {}).get('dropped_events', 0)} dropped)")


# Speedup floors for the exact (epsilon = 0) sweep, deliberately below the
# target numbers in the issue (>=1.5x at 2T, >=6x at 8T) so CI noise does
# not flap the gate, but far above the regression they guard against
# (0.57x at 2T). Applied only when the machine has at least as many
# hardware threads as the run asked for.
EXACT_SPEEDUP_FLOORS = {2: 1.2, 4: 2.0, 8: 4.0}

# At epsilon > 0 levels are small and the serial fallback should kick in:
# no thread count may be materially slower than serial, on any hardware
# that can actually run the threads.
APPROX_SPEEDUP_FLOOR = 0.95


def check_scaling(path):
    doc = load(path)
    if doc.get("benchmark") != "parallel_scaling":
        fail(f"{path}: not a parallel_scaling artifact")
    hardware = doc.get("hardware_concurrency")
    if not isinstance(hardware, int) or hardware < 0:
        fail(f"{path}: missing or invalid hardware_concurrency")
    sweeps = doc.get("sweeps")
    if not sweeps:
        fail(f"{path}: empty sweeps array")
    checked_floors = 0
    for sweep in sweeps:
        epsilon = sweep.get("epsilon")
        runs = sweep.get("runs")
        if epsilon is None or not runs:
            fail(f"{path}: sweep without epsilon or runs")
        allocations = None
        for run in runs:
            threads = run.get("threads")
            speedup = run.get("speedup")
            if not isinstance(threads, int) or threads < 1:
                fail(f"eps={epsilon}: run without a valid thread count")
            if not isinstance(speedup, (int, float)):
                fail(f"eps={epsilon} t={threads}: missing speedup")
            if run.get("matches_serial_output") is not True:
                fail(f"eps={epsilon} t={threads}: output does not match "
                     f"the serial run — determinism bug")
            if allocations is None:
                allocations = run.get("product_allocations")
            elif run.get("product_allocations") != allocations:
                fail(f"eps={epsilon} t={threads}: product_allocations "
                     f"{run.get('product_allocations')} drifts from the "
                     f"serial run's {allocations}")
            # Floors only bind when the hardware can actually run the
            # threads in parallel (hardware_concurrency 0 means unknown,
            # which also skips: a floor that cannot be met on the machine
            # is noise, not signal).
            if threads == 1 or hardware < threads:
                continue
            floor = (EXACT_SPEEDUP_FLOORS.get(threads)
                     if epsilon == 0 else APPROX_SPEEDUP_FLOOR)
            if floor is None:
                continue
            checked_floors += 1
            if speedup < floor:
                fail(f"eps={epsilon} t={threads}: speedup {speedup:.2f}x "
                     f"below the {floor:.2f}x regression floor")
    skipped = " (floors skipped: insufficient cores)" if checked_floors == 0 \
        else f" ({checked_floors} floors checked)"
    print(f"check_obs: scaling OK ({len(sweeps)} sweeps, "
          f"hardware_concurrency={hardware}){skipped}")


def check_hw_object(doc):
    """The hw object must be shape-stable across platforms: the noop
    backend still reports every phase and every counter key, just zeroed —
    a dashboard never has to branch on the platform."""
    hw = doc["hw"]
    if hw.get("backend") not in HW_BACKENDS:
        fail(f"hw.backend {hw.get('backend')!r} is not one of {HW_BACKENDS}")
    if hw.get("kernel") not in KNOWN_KERNELS:
        fail(f"hw.kernel {hw.get('kernel')!r} is not one of {KNOWN_KERNELS}")
    phases = hw.get("phases")
    if not isinstance(phases, list) or not phases:
        fail("hw.phases missing or empty — spans stopped aggregating")
    names = []
    for phase in phases:
        for key in HW_PHASE_KEYS:
            if key not in phase:
                fail(f"hw phase {phase.get('phase', '?')}: missing {key}")
        names.append(phase["phase"])
        if phase["spans"] <= 0:
            fail(f"hw phase {phase['phase']}: spans must be positive")
        if hw["backend"] == "noop" and phase["cycles"] != 0:
            fail(f"hw phase {phase['phase']}: nonzero cycles under the "
                 f"noop backend")
        if hw["backend"] == "linux_perf" and phase["phase"] == "run" and \
                phase["instructions"] <= 0:
            fail("hw run phase has no instructions despite linux_perf")
    if names != sorted(names):
        fail(f"hw.phases not sorted by phase name: {names}")
    for required in ("run", "products", "validity"):
        if required not in names:
            fail(f"hw.phases missing the '{required}' phase (have {names})")
    derived = hw.get("derived")
    for key in ("run_ipc", "products_cache_misses_per_row",
                "validity_cache_misses_per_row"):
        if not isinstance(derived.get(key) if derived else None, (int, float)):
            fail(f"hw.derived.{key} missing or non-numeric")


def check_report(path, stats_path):
    doc = load(path)
    if doc.get("schema_version") != 3:
        fail(f"{path}: schema_version != 3")
    for key in ("config", "dataset", "result", "timing", "metrics",
                "histograms", "levels", "checkpoint", "hw", "trace"):
        if key not in doc:
            fail(f"{path}: missing top-level '{key}'")
    check_hw_object(doc)
    trace = doc["trace"]
    if not isinstance(trace.get("enabled"), bool):
        fail("trace.enabled missing or non-boolean")
    for key in ("buffered_events", "dropped_events"):
        if not isinstance(trace.get(key), int) or trace[key] < 0:
            fail(f"trace.{key} missing or negative")
    if trace["enabled"] and trace["buffered_events"] <= 0:
        fail("trace enabled but buffered_events is zero")
    checkpoint = doc["checkpoint"]
    for key in ("writes", "bytes", "seconds", "resumed_from_level"):
        if not isinstance(checkpoint.get(key), (int, float)):
            fail(f"checkpoint.{key} missing or non-numeric")
    if (checkpoint["writes"] == 0) != (checkpoint["bytes"] == 0):
        fail("checkpoint writes/bytes disagree about whether any "
             "snapshot was written")
    if not isinstance(dig(doc, ("result", "resumable")), bool):
        fail("result.resumable missing or non-boolean")
    if not str(doc["dataset"].get("fingerprint", "")).startswith("crc32:"):
        fail("dataset.fingerprint is not a crc32 fingerprint")

    timing = doc["timing"]
    parts = (timing["read_seconds"] + timing["discover_seconds"] +
             timing["report_seconds"] + timing.get("other_seconds", 0.0))
    if not close(parts, timing["total_seconds"], rel=1e-9, abs_tol=1e-9):
        fail(f"timing does not sum: {parts} != {timing['total_seconds']}")

    try:
        with open(stats_path) as handle:
            stats_text = handle.read()
    except OSError as error:
        fail(f"{stats_path}: {error}")
    stats_line = next((line for line in stats_text.splitlines()
                       if line.startswith("# levels=")), None)
    if stats_line is None:
        fail(f"{stats_path}: no '# levels=' stats line (run with --stats)")
    tokens = dict(token.split("=", 1) for token in stats_line[2:].split()
                  if "=" in token)
    for token, path_keys in STATS_TOKENS.items():
        if token not in tokens:
            fail(f"stats line is missing {token}=")
        stats_value = int(tokens[token])
        report_value = int(dig(doc, path_keys))
        if stats_value != report_value:
            fail(f"{token}: --stats says {stats_value}, report "
                 f"{'.'.join(path_keys)} says {report_value}")
    degraded = int(tokens.get("degraded_to_disk", "0"))
    if bool(degraded) != bool(dig(doc, ("result", "degraded_to_disk"))):
        fail("degraded_to_disk mismatch between --stats and report")
    # trace_dropped only appears when the run traced; when it does, it and
    # the report describe the same ring.
    if "trace_dropped" in tokens:
        if int(tokens["trace_dropped"]) != int(
                dig(doc, ("trace", "dropped_events"))):
            fail("trace_dropped mismatch between --stats and report")
    hw_backend_line = next(
        (line for line in stats_text.splitlines()
         if line.startswith("# hw backend=")), None)
    if hw_backend_line is None:
        fail(f"{stats_path}: no '# hw backend=' line (run with --stats)")
    if hw_backend_line.split("=", 1)[1] != dig(doc, ("hw", "backend")):
        fail("hw backend mismatch between --stats and report")

    level_lines = re.findall(
        r"^# level (\d+): nodes=(\d+) wall=([\d.eE+-]+)s "
        r"worker=([\d.eE+-]+)s speedup=([\d.eE+-]+)$",
        stats_text, re.M)
    levels = doc["levels"]
    if len(level_lines) != len(levels):
        fail(f"--stats prints {len(level_lines)} level lines, report has "
             f"{len(levels)}")
    for line, row in zip(level_lines, levels):
        level, nodes = int(line[0]), int(line[1])
        if level != row["level"] or nodes != row["nodes"]:
            fail(f"level {level}: nodes {nodes} vs report "
                 f"level {row['level']} nodes {row['nodes']}")
        for text_value, key in zip(line[2:],
                                   ("wall_seconds", "worker_seconds",
                                    "speedup")):
            if not close(float(text_value), row[key]):
                fail(f"level {level} {key}: --stats {text_value} vs "
                     f"report {row[key]}")
    print(f"check_obs: report OK ({len(levels)} levels, "
          f"{len(STATS_TOKENS)} counters matched)")


# Frames are sanitized at emission (' ' and ';' become '_'), so the line
# grammar really is this simple: one space, splitting frames from count.
FOLDED_LINE = re.compile(r"^(\S+) (\d+)$")


def discover_seconds(stats_path):
    """The discover-phase wall time from a --stats capture: the profiler
    only runs during discovery, so this is the honest numerator — CSV read
    and report writing would dilute the ratio."""
    try:
        with open(stats_path) as handle:
            text = handle.read()
    except OSError as error:
        fail(f"{stats_path}: {error}")
    match = re.search(r"^# phases .*\bdiscover=([\d.eE+-]+)s", text, re.M)
    if match is None:
        fail(f"{stats_path}: no '# phases ... discover=' line "
             f"(run with --stats)")
    return float(match.group(1))


def check_profile(argv):
    folded_path = argv[0]
    try:
        split = argv.index("--prof")
    except ValueError:
        fail("profile: missing --prof STATS...")
    if argv[1] != "--base" or split < 3 or split == len(argv) - 1:
        fail("usage: profile folded.txt --base STATS... --prof STATS...")
    base = [discover_seconds(p) for p in argv[2:split]]
    prof = [discover_seconds(p) for p in argv[split + 1:]]

    try:
        with open(folded_path) as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        fail(f"{folded_path}: {error}")
    if not lines:
        fail(f"{folded_path}: empty folded-stack file")
    total = 0
    working = 0
    for index, line in enumerate(lines):
        match = FOLDED_LINE.match(line)
        if match is None:
            fail(f"{folded_path}:{index + 1}: not 'frames count': {line!r}")
        frames = match.group(1).split(";")
        count = int(match.group(2))
        if frames[0] != "tane":
            fail(f"{folded_path}:{index + 1}: stack not rooted at 'tane'")
        if count <= 0:
            fail(f"{folded_path}:{index + 1}: non-positive sample count")
        if any(not frame for frame in frames):
            fail(f"{folded_path}:{index + 1}: empty frame")
        total += count
        if "(idle)" not in frames:
            working += count
    if working == 0:
        fail(f"{folded_path}: every sample is idle — the span stack never "
             f"saw a frame")

    # min-of-N on both sides: scheduling noise only ever adds time, so the
    # minimum is the least-contaminated estimate of each mode's true cost.
    ratio = min(prof) / min(base)
    if ratio > PROFILE_OVERHEAD_BUDGET:
        fail(f"profiling overhead {ratio:.4f}x exceeds the "
             f"{PROFILE_OVERHEAD_BUDGET:.2f}x budget "
             f"(base min {min(base):.4f}s, profiled min {min(prof):.4f}s)")
    print(f"check_obs: profile OK ({total} samples, {working} working, "
          f"overhead {ratio:.4f}x <= {PROFILE_OVERHEAD_BUDGET:.2f}x)")


def main(argv):
    if len(argv) >= 3 and argv[1] == "micro":
        check_micro(argv[2])
    elif len(argv) >= 3 and argv[1] == "trace":
        check_trace(argv[2])
    elif len(argv) >= 4 and argv[1] == "report":
        check_report(argv[2], argv[3])
    elif len(argv) >= 3 and argv[1] == "scaling":
        check_scaling(argv[2])
    elif len(argv) >= 6 and argv[1] == "profile":
        check_profile(argv[2:])
    else:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
