// The scalable TANE configuration: run the same discovery with in-memory
// partitions (TANE/MEM) and with disk-resident partitions (TANE) on a
// dataset scaled with the paper's "×n" copy construction, and compare the
// memory footprints — the trade-off behind Table 1's two TANE columns.
//
// Run: ./build/examples/scalable_discovery [copies]

#include <cstdio>
#include <cstdlib>

#include "core/tane.h"
#include "datasets/paper_datasets.h"
#include "relation/transforms.h"

int main(int argc, char** argv) {
  const int copies = argc > 1 ? std::atoi(argv[1]) : 8;
  if (copies < 1) {
    std::fprintf(stderr, "copies must be >= 1\n");
    return 1;
  }

  tane::StatusOr<tane::Relation> base =
      tane::MakePaperDataset(tane::PaperDataset::kWisconsinBreastCancer);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  tane::StatusOr<tane::Relation> scaled =
      tane::ConcatenateCopies(*base, copies);
  if (!scaled.ok()) {
    std::fprintf(stderr, "%s\n", scaled.status().ToString().c_str());
    return 1;
  }
  std::printf("Wisconsin-breast-cancer stand-in x%d: %lld rows, %d cols\n\n",
              copies, static_cast<long long>(scaled->num_rows()),
              scaled->num_columns());

  for (tane::StorageMode mode :
       {tane::StorageMode::kMemory, tane::StorageMode::kDisk}) {
    tane::TaneConfig config;
    config.storage = mode;
    tane::StatusOr<tane::DiscoveryResult> result =
        tane::Tane::Discover(*scaled, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const tane::DiscoveryStats& stats = result->stats;
    std::printf("%-9s N=%-5lld time=%7.3fs peak-partition-mem=%8.2f MB "
                "spill-written=%8.2f MB\n",
                mode == tane::StorageMode::kMemory ? "TANE/MEM" : "TANE",
                static_cast<long long>(result->num_fds()),
                stats.wall_seconds,
                stats.peak_partition_bytes / 1048576.0,
                stats.spill_bytes_written / 1048576.0);
  }

  std::printf("\nBoth configurations find the same dependency set; the disk\n"
              "variant bounds resident partition memory at the cost of I/O,\n"
              "matching the paper's TANE vs TANE/MEM comparison.\n");
  return 0;
}
