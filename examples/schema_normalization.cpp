// Database reverse engineering: discover the dependencies of a denormalized
// table, derive its candidate keys, and propose a BCNF decomposition — the
// application area (schema re-engineering) cited in the paper's
// introduction.
//
// Run: ./build/examples/schema_normalization

#include <cstdio>

#include "analysis/closure.h"
#include "analysis/keys.h"
#include "analysis/normalization.h"
#include "core/tane.h"
#include "relation/csv.h"

namespace {

// A classic denormalized order table: order_id determines customer, the
// customer determines their city, and product determines unit price.
constexpr const char* kOrdersCsv =
    "order_id,customer,city,product,unit_price,quantity\n"
    "1,acme,berlin,bolt,2,100\n"
    "2,acme,berlin,nut,1,500\n"
    "3,globex,paris,bolt,2,250\n"
    "4,globex,paris,washer,1,80\n"
    "5,initech,austin,nut,1,100\n"
    "6,initech,austin,bolt,2,80\n"
    "7,umbrella,london,gear,9,15\n"
    "8,umbrella,london,nut,1,100\n"
    "9,acme,berlin,gear,9,15\n"
    "10,globex,paris,gear,9,80\n";

}  // namespace

int main() {
  tane::StatusOr<tane::Relation> relation = tane::ReadCsvString(kOrdersCsv);
  if (!relation.ok()) {
    std::fprintf(stderr, "%s\n", relation.status().ToString().c_str());
    return 1;
  }
  const tane::Schema& schema = relation->schema();

  tane::StatusOr<tane::DiscoveryResult> result =
      tane::Tane::Discover(*relation);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Discovered %lld minimal dependencies, e.g.:\n",
              static_cast<long long>(result->num_fds()));
  int shown = 0;
  for (const tane::FunctionalDependency& fd : result->fds) {
    if (fd.lhs.size() <= 1 && shown < 10) {
      std::printf("  %s\n", fd.ToString(schema).c_str());
      ++shown;
    }
  }

  // A compact cover is easier to reason about than the full minimal set.
  std::vector<tane::FunctionalDependency> cover =
      tane::MinimalCover(result->fds);
  std::printf("\nMinimal cover (%zu rules):\n", cover.size());
  for (const tane::FunctionalDependency& fd : cover) {
    std::printf("  %s\n", fd.ToString(schema).c_str());
  }

  std::vector<tane::AttributeSet> keys =
      tane::CandidateKeys(relation->num_columns(), result->fds);
  std::printf("\nCandidate keys:\n");
  for (tane::AttributeSet key : keys) {
    std::printf("  %s\n", key.ToString(schema).c_str());
  }

  std::vector<tane::BcnfViolation> violations =
      tane::FindBcnfViolations(relation->num_columns(), result->fds);
  std::printf("\nBCNF violations: %zu\n", violations.size());

  std::vector<tane::DecomposedRelation> fragments =
      tane::DecomposeToBcnf(relation->num_columns(), result->fds);
  std::printf("\nSuggested BCNF decomposition:\n%s",
              tane::DescribeDecomposition(schema, fragments).c_str());
  return 0;
}
