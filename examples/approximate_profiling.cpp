// Approximate-dependency profiling: generate a dataset with a planted
// dependency corrupted by noise, sweep the g3 threshold ε, and show how the
// discovered rule set changes — then pinpoint the exceptional rows behind
// one approximate dependency, the data-cleaning workflow motivated in the
// paper's introduction.
//
// Run: ./build/examples/approximate_profiling

#include <cstdio>

#include "analysis/violations.h"
#include "core/tane.h"
#include "datasets/generators.h"

int main() {
  // A sensor-style table: device and channel determine the calibration
  // constant, except for ~4% of corrupted readings.
  tane::SyntheticSpec spec;
  spec.rows = 5000;
  spec.seed = 2026;
  spec.base = {{"device", 40, 0.0},
               {"channel", 8, 0.0},
               {"reading", 500, 0.0}};
  spec.derived = {{"calibration", {0, 1}, 30, /*noise=*/0.04}};
  tane::StatusOr<tane::Relation> relation = tane::GenerateSynthetic(spec);
  if (!relation.ok()) {
    std::fprintf(stderr, "%s\n", relation.status().ToString().c_str());
    return 1;
  }
  const tane::Schema& schema = relation->schema();

  std::printf("Relation: %lld rows; planted rule (device,channel) -> "
              "calibration with ~4%% corrupted rows\n\n",
              static_cast<long long>(relation->num_rows()));
  std::printf("%-8s %8s %10s\n", "epsilon", "N", "time(s)");
  for (double epsilon : {0.0, 0.01, 0.05, 0.10, 0.25}) {
    tane::TaneConfig config;
    config.epsilon = epsilon;
    tane::StatusOr<tane::DiscoveryResult> result =
        tane::Tane::Discover(*relation, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8.2f %8lld %10.4f\n", epsilon,
                static_cast<long long>(result->num_fds()),
                result->stats.wall_seconds);
  }

  // Inspect the planted rule.
  const tane::FunctionalDependency planted{
      tane::AttributeSet::Of({0, 1}),
      schema.IndexOf("calibration"), 0.0};
  tane::StatusOr<double> error = tane::MeasureG3(*relation, planted);
  if (!error.ok()) return 1;
  std::printf("\ng3(%s) = %.4f\n", planted.ToString(schema).c_str(), *error);

  tane::StatusOr<std::vector<int64_t>> exceptional =
      tane::ExceptionalRows(*relation, planted);
  if (!exceptional.ok()) return 1;
  std::printf("exceptional rows: %zu (removing them makes the rule exact)\n",
              exceptional->size());
  std::printf("first few exceptions:\n");
  for (size_t i = 0; i < exceptional->size() && i < 5; ++i) {
    const int64_t row = (*exceptional)[i];
    std::printf("  row %-6lld device=%s channel=%s calibration=%s\n",
                static_cast<long long>(row),
                relation->value(row, 0).c_str(),
                relation->value(row, 1).c_str(),
                relation->value(row, 3).c_str());
  }

  tane::StatusOr<std::vector<std::pair<int64_t, int64_t>>> witnesses =
      tane::ViolatingPairs(*relation, planted, 3);
  if (!witnesses.ok()) return 1;
  std::printf("violating row pairs (same device+channel, different "
              "calibration):\n");
  for (const auto& [t, u] : *witnesses) {
    std::printf("  rows %lld and %lld\n", static_cast<long long>(t),
                static_cast<long long>(u));
  }
  return 0;
}
