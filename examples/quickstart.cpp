// Quickstart: load a CSV relation, discover its minimal functional
// dependencies with TANE, and print them with schema names.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart [path/to/data.csv]

#include <cstdio>
#include <string>

#include "core/tane.h"
#include "relation/csv.h"

namespace {

// The example relation from Figure 1 of the TANE paper.
constexpr const char* kFigure1Csv =
    "A,B,C,D\n"
    "1,a,$,Flower\n"
    "1,A,L,Tulip\n"
    "2,A,$,Daffodil\n"
    "2,A,$,Flower\n"
    "2,b,L,Lily\n"
    "3,b,$,Orchid\n"
    "3,c,L,Flower\n"
    "3,c,#,Rose\n";

}  // namespace

int main(int argc, char** argv) {
  tane::StatusOr<tane::Relation> relation =
      argc > 1 ? tane::ReadCsvFile(argv[1])
               : tane::ReadCsvString(kFigure1Csv);
  if (!relation.ok()) {
    std::fprintf(stderr, "failed to load relation: %s\n",
                 relation.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded relation: %lld rows, %d columns\n",
              static_cast<long long>(relation->num_rows()),
              relation->num_columns());

  tane::StatusOr<tane::DiscoveryResult> result =
      tane::Tane::Discover(*relation);
  if (!result.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nMinimal functional dependencies (%lld):\n",
              static_cast<long long>(result->num_fds()));
  for (const tane::FunctionalDependency& fd : result->fds) {
    std::printf("  %s\n", fd.ToString(relation->schema()).c_str());
  }

  std::printf("\nMinimal keys (%zu):\n", result->keys.size());
  for (tane::AttributeSet key : result->keys) {
    std::printf("  %s\n", key.ToString(relation->schema()).c_str());
  }

  const tane::DiscoveryStats& stats = result->stats;
  std::printf(
      "\nSearch stats: %d levels, %lld sets, %lld validity tests, "
      "%lld partition products, %.4fs\n",
      stats.levels_processed, static_cast<long long>(stats.sets_generated),
      static_cast<long long>(stats.validity_tests),
      static_cast<long long>(stats.partition_products), stats.wall_seconds);
  return 0;
}
