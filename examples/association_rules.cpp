// Association rules from equivalence classes — the generalization sketched
// in the paper's concluding remarks: comparing individual equivalence
// classes (value combinations) instead of whole partitions turns the FD
// machinery into an association-rule miner. This example mines rules from a
// census-like table and contrasts them with the functional dependencies of
// the same relation.
//
// Run: ./build/examples/association_rules

#include <cstdio>

#include "core/tane.h"
#include "datasets/paper_datasets.h"
#include "rules/association.h"

int main() {
  tane::StatusOr<tane::Relation> relation =
      tane::MakePaperDataset(tane::PaperDataset::kAdult, /*rows=*/5000);
  if (!relation.ok()) {
    std::fprintf(stderr, "%s\n", relation.status().ToString().c_str());
    return 1;
  }
  std::printf("Census-like relation: %lld rows, %d columns\n\n",
              static_cast<long long>(relation->num_rows()),
              relation->num_columns());

  tane::AssociationMiningOptions options;
  options.min_support = 0.08;
  options.min_confidence = 0.75;
  options.max_itemset_size = 3;
  tane::StatusOr<std::vector<tane::AssociationRule>> rules =
      tane::MineAssociationRules(*relation, options);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }

  std::printf("Top association rules (support >= %.2f, confidence >= %.2f):\n",
              options.min_support, options.min_confidence);
  int shown = 0;
  for (const tane::AssociationRule& rule : *rules) {
    if (shown++ >= 12) break;
    std::printf("  %s\n", rule.ToString(*relation).c_str());
  }
  std::printf("  (%zu rules total)\n\n", rules->size());

  // Contrast: functional dependencies speak about *all* value combinations
  // at once; an FD X -> A is the statement that every X-equivalence class
  // maps into one A-class — i.e. a 100%-confidence rule for every value.
  tane::TaneConfig config;
  config.max_lhs_size = 2;
  tane::StatusOr<tane::DiscoveryResult> fds =
      tane::Tane::Discover(*relation, config);
  if (!fds.ok()) {
    std::fprintf(stderr, "%s\n", fds.status().ToString().c_str());
    return 1;
  }
  std::printf("Functional dependencies with |lhs| <= 2: %lld, e.g.\n",
              static_cast<long long>(fds->num_fds()));
  int listed = 0;
  for (const tane::FunctionalDependency& fd : fds->fds) {
    if (listed++ >= 5) break;
    std::printf("  %s\n", fd.ToString(relation->schema()).c_str());
  }
  std::printf(
      "\nAn FD is the degenerate association family whose every value-level\n"
      "rule has confidence 1; approximate FDs relax exactly that.\n");
  return 0;
}
